"""Cycle-exactness of the active-set and vectorized stepping cores.

``Network.step`` (active sets + O(1) idleness), the struct-of-arrays
``step_vectorized`` core and ``Simulator``'s idle fast-forward are pure
performance work: for any seed and workload they must produce
*bit-identical* results to ``Network.step_reference`` (the original
O(num_nodes) loop) driven without fast-forward.  These tests run every
backend over the same configurations -- all three protocols, mesh and
torus, with a bursty workload full of idle gaps (the fast-forward path's
favourite food) -- and compare every observable: counters, per-message
records, mode breakdown, final cycle and work counter.  A fault +
reliability scenario and the fuzzer's corpus reproducers repeat the
comparison with the recovery machinery engaged.

Separate runs per configuration step with the registry validator
attached, asserting the ActivityTracker invariants (and, with the
vectorized backend, the flat-array mirrors) against the O(N) ground
truth on every cycle.
"""

import dataclasses
from functools import lru_cache
from pathlib import Path

import pytest

from repro.network.message import MessageFactory
from repro.network.network import Network
from repro.orchestrate.runner import execute_job
from repro.sim.config import (
    NetworkConfig,
    ReliabilityConfig,
    WaveConfig,
    WormholeConfig,
)
from repro.sim.engine import Simulator
from repro.sim.rng import SimRandom
from repro.topology import build_topology
from repro.topology.faults import FaultSchedule, derive_fault_rng
from repro.traffic import UniformPattern, compile_directives, uniform_workload
from repro.verify.fuzz import load_spec

MAX_CYCLES = 60_000
CORPUS = Path(__file__).resolve().parent.parent / "corpus"
BACKENDS = ["active", "vectorized"]


def make_config(protocol: str, topology: str, dims: tuple) -> NetworkConfig:
    wave = None
    if protocol != "wormhole":
        wave = WaveConfig(
            num_switches=2,
            circuit_cache_size=2,
            replacement="lru",
            model_buffers=True,
            buffer_realloc_penalty=20,
        )
    vcs = 2 if topology == "torus" else 1
    return NetworkConfig(
        topology=topology,
        dims=dims,
        protocol=protocol,
        wormhole=WormholeConfig(vcs=vcs, routing="dor", buffer_depth=2),
        wave=wave,
        seed=11,
    )


def bursty_workload(protocol: str, num_nodes: int, wl_seed: int):
    """Three short bursts separated by long idle gaps."""
    factory = MessageFactory()
    pattern = UniformPattern(num_nodes)
    rng = SimRandom(wl_seed)
    msgs = []
    for burst, (start, load, length) in enumerate(
        [(0, 0.25, 12), (2_500, 0.4, 33), (9_000, 0.15, 4)]
    ):
        burst_msgs = uniform_workload(
            factory,
            pattern,
            num_nodes=num_nodes,
            offered_load=load,
            length=length,
            duration=120,
            rng=rng.fork(f"burst{burst}"),
        )
        for m in burst_msgs:
            m.created += start
        msgs.extend(burst_msgs)
    if protocol == "carp":
        items, _report = compile_directives(msgs, min_messages=2, min_flits=2)
        return items
    return msgs


def fingerprint(net: Network, result) -> dict:
    stats = net.stats
    records = tuple(
        (
            m.msg_id, m.src, m.dst, m.length, m.created, m.injected,
            m.delivered, None if m.mode is None else m.mode.value,
            m.hops, m.setup_cycles,
        )
        for m in sorted(stats.messages.values(), key=lambda m: m.msg_id)
    )
    return {
        "counters": dict(sorted(stats.counters.items())),
        "records": records,
        "modes": stats.mode_breakdown(),
        "outstanding": stats.outstanding,
        "cycle": net.cycle,
        "work": net.work_counter,
        "result": (result.cycles, result.completed, result.injected,
                   result.delivered),
    }


def run_one(protocol, topology, dims, *, backend, on_cycle=None):
    config = dataclasses.replace(
        make_config(protocol, topology, dims), backend=backend
    )
    net = Network(config)
    items = bursty_workload(protocol, config.num_nodes, wl_seed=99)
    sim = Simulator(
        net,
        items,
        deadlock_check_interval=64,
        progress_timeout=20_000,
        on_cycle=on_cycle,
        fast_forward=backend != "reference",
    )
    result = sim.run(MAX_CYCLES)
    assert result.completed, f"{protocol}/{topology} did not drain"
    return net, result


CONFIGS = [
    ("wormhole", "mesh", (4, 4)),
    ("wormhole", "torus", (3, 3)),
    ("clrp", "mesh", (4, 4)),
    ("clrp", "torus", (3, 3)),
    ("carp", "mesh", (4, 4)),
    ("carp", "torus", (3, 3)),
    # New topology families: diameter-1 full mesh and unidirectional MIN.
    ("wormhole", "fullmesh", (9,)),
    ("clrp", "fullmesh", (9,)),
    ("wormhole", "min", (2, 2, 2)),
    ("clrp", "min", (2, 2, 2)),
]


@lru_cache(maxsize=None)
def reference_fingerprint(protocol, topology, dims):
    net, result = run_one(protocol, topology, dims, backend="reference")
    return fingerprint(net, result)


@pytest.mark.parametrize("backend", BACKENDS)
@pytest.mark.parametrize("protocol,topology,dims", CONFIGS)
def test_backend_matches_reference(protocol, topology, dims, backend):
    net, result = run_one(protocol, topology, dims, backend=backend)
    assert fingerprint(net, result) == reference_fingerprint(
        protocol, topology, dims
    )


@pytest.mark.parametrize(
    "protocol,topology,dims,backend",
    [("wormhole", "mesh", (4, 4), "active"),
     ("wormhole", "mesh", (4, 4), "vectorized"),
     ("clrp", "mesh", (4, 4), "active"),
     ("clrp", "mesh", (4, 4), "vectorized"),
     ("carp", "torus", (3, 3), "active"),
     ("carp", "torus", (3, 3), "vectorized")],
)
def test_activity_tracker_invariants_hold_every_cycle(
    protocol, topology, dims, backend
):
    # on_cycle disables fast-forward, so the validator sees every cycle.
    # With the vectorized backend, ActivityTracker.validate also asserts
    # the core's struct-of-arrays state against the per-object ground
    # truth, so this doubles as the SoA drift check.
    net, _result = run_one(
        protocol, topology, dims,
        backend=backend,
        on_cycle=lambda n: n.activity.validate(n),
    )
    net.activity.validate(net)


# -- faults + reliability ---------------------------------------------------


def run_faulted(backend):
    """Bursty wormhole run with a live fault campaign and the ack /
    retransmit layer engaged -- the backends must agree while worms are
    purged, poisoned, retried and (sometimes) double-delivered."""
    config = dataclasses.replace(
        make_config("wormhole", "mesh", (4, 4)),
        backend=backend,
        reliability=ReliabilityConfig(
            timeout=400, max_timeout=1600, max_retries=4
        ),
    )
    sched = FaultSchedule.random_campaign(
        build_topology("mesh", (4, 4)),
        mtbf=900, mttr=600, horizon=9_500,
        rng=derive_fault_rng(config.seed),
    )
    net = Network(config, faults=sched)
    items = bursty_workload("wormhole", config.num_nodes, wl_seed=99)
    sim = Simulator(
        net, items,
        progress_timeout=20_000,
        fast_forward=backend != "reference",
    )
    result = sim.run(MAX_CYCLES)
    return fingerprint(net, result)


@pytest.mark.parametrize("backend", BACKENDS)
def test_backend_equivalence_under_faults_and_reliability(backend):
    fp = run_faulted(backend)
    # The campaign must actually exercise the recovery paths for the
    # equivalence to mean anything.
    assert fp["counters"]["fault.links_killed"] > 0
    assert fp["counters"]["reliability.retransmits"] > 0
    assert fp == run_faulted("reference")


# -- fuzzer corpus reproducers ---------------------------------------------


@pytest.mark.parametrize(
    "spec_name", ["clrp_phase_budget.json", "deadlock_selfwait.json"]
)
def test_corpus_reproducers_match_across_backends(spec_name):
    """The regression corpus re-runs bit-identically on every backend."""
    spec = load_spec(CORPUS / spec_name)

    def metrics(backend):
        return execute_job(
            dataclasses.replace(
                spec,
                config=dataclasses.replace(spec.config, backend=backend),
            )
        )

    ref = metrics("reference")
    assert metrics("active") == ref
    assert metrics("vectorized") == ref


def test_fast_forward_skips_idle_gaps():
    """The fast-forwarded run must do far fewer step() calls while
    reporting the exact same final cycle."""
    config = make_config("wormhole", "mesh", (4, 4))

    def counted(reference):
        net = Network(config)
        items = bursty_workload("wormhole", config.num_nodes, wl_seed=7)
        steps = 0
        original = net.step

        def stepper():
            nonlocal steps
            steps += 1
            original()

        net.step = stepper
        sim = Simulator(net, items, fast_forward=not reference)
        result = sim.run(MAX_CYCLES)
        assert result.completed
        return steps, result.cycles

    ref_steps, ref_cycles = counted(reference=True)
    act_steps, act_cycles = counted(reference=False)
    assert act_cycles == ref_cycles
    # The workload has ~10k cycles of idle gap; nearly all must be skipped.
    assert act_steps < ref_steps / 2
