"""Dynamic fault injection end to end (E7b foundations).

Links die (and heal) mid-run: established wave circuits must be torn
down end-to-end, in-flight worms purged with credits restored, and --
with the reliability layer on -- every message either delivered or
reported as an explicit DeliveryFailure.  Runs are bit-reproducible for
a fixed seed and schedule.
"""

from repro.core.circuit_cache import CacheEntryState
from repro.network.message import MessageFactory
from repro.network.network import Network
from repro.sim.config import NetworkConfig, ReliabilityConfig, WaveConfig
from repro.sim.engine import Simulator
from repro.sim.rng import SimRandom
from repro.topology import FaultSchedule, build_topology
from repro.topology.faults import derive_fault_rng
from repro.traffic import UniformPattern, uniform_workload
from repro.verify import (
    check_all_invariants,
    check_fault_isolation,
    teardown_latency,
)


def x_port(topo, node):
    return next(
        p for p in topo.connected_ports(node)
        if topo.neighbor(node, p) == node + 1
    )


def drain(net, limit=60_000):
    for _ in range(limit):
        net.step()
        if net.is_idle():
            return
    raise AssertionError(f"network not idle after {limit} cycles")


class TestCircuitFaultTeardown:
    def _net_with_kill(self, kill_cycle, reliability=None):
        config = NetworkConfig(
            dims=(4, 4), protocol="clrp", wave=WaveConfig(), seed=1,
            reliability=reliability,
        )
        topo = build_topology("mesh", (4, 4))
        sched = FaultSchedule(topo)
        sched.schedule_kill(kill_cycle, 1, x_port(topo, 1))
        return Network(config, faults=sched), sched

    def test_established_circuit_severed_and_invalidated(self):
        net, sched = self._net_with_kill(kill_cycle=200)
        # Long transfer: still streaming over 0-1-2-3 when the middle
        # link dies at cycle 200.
        net.inject(MessageFactory().make(0, 3, 2000, 0))
        net.run(205)  # through the kill cycle
        assert any(r.reason == "circuit_severed" for r in net.stats.losses)
        assert net.stats.counters["circuit.fault_teardowns"] >= 1
        assert net.stats.counters["cache.fault_invalidations"] >= 1
        entry = net.interfaces[0].engine.cache.lookup(3)
        assert entry is None or entry.state is not CacheEntryState.ESTABLISHED
        drain(net)
        # The message is gone (no reliability layer), but nothing else is
        # allowed to be inconsistent or reference the dead link.
        assert not net.stats.delivered_records()
        net.run(teardown_latency(net))
        check_all_invariants(net)
        check_fault_isolation(net)

    def test_severed_transfer_recovered_by_retransmit(self):
        rel = ReliabilityConfig(
            timeout=6000, backoff=2, max_timeout=24000, max_retries=4
        )
        net, sched = self._net_with_kill(kill_cycle=200, reliability=rel)
        net.inject(MessageFactory().make(0, 3, 2000, 0))
        drain(net)
        # The replacement circuit searches around the dead link.
        assert len(net.stats.delivered_records()) == 1
        assert net.stats.counters["reliability.retransmits"] >= 1
        assert not net.stats.delivery_failures
        net.run(teardown_latency(net))
        check_all_invariants(net)
        check_fault_isolation(net)

    def test_setting_up_circuit_aborted_by_kill(self):
        # Kill while the probe's reservations are still being acked: the
        # setup unwinds and the engine retries or falls back -- no crash,
        # no orphan reservations.
        net, sched = self._net_with_kill(kill_cycle=3)
        net.inject(MessageFactory().make(0, 3, 64, 0))
        drain(net)
        net.run(teardown_latency(net))
        check_all_invariants(net)
        check_fault_isolation(net)


class TestWormholePurge:
    def test_inflight_worm_purged_with_credits_restored(self):
        config = NetworkConfig(dims=(4, 4), protocol="wormhole", wave=None)
        topo = build_topology("mesh", (4, 4))
        sched = FaultSchedule(topo)
        sched.schedule_kill(6, 1, x_port(topo, 1))
        net = Network(config, faults=sched)
        net.inject(MessageFactory().make(0, 3, 64, 0))
        drain(net)
        assert any(r.reason == "link_down" for r in net.stats.losses)
        assert net.stats.counters["fault.worms_purged"] >= 1
        assert not net.stats.delivered_records()
        # Credit sanity after the purge is the critical part: every
        # dropped flit must have returned its credit upstream.
        check_all_invariants(net)

    def test_unaffected_traffic_still_delivers(self):
        config = NetworkConfig(dims=(4, 4), protocol="wormhole", wave=None)
        topo = build_topology("mesh", (4, 4))
        sched = FaultSchedule(topo)
        sched.schedule_kill(6, 1, x_port(topo, 1))
        net = Network(config, faults=sched)
        factory = MessageFactory()
        net.inject(factory.make(0, 3, 64, 0))   # crosses the dying link
        net.inject(factory.make(12, 15, 64, 0))  # disjoint row, unaffected
        drain(net)
        delivered = net.stats.delivered_records()
        assert len(delivered) == 1
        assert delivered[0].src == 12
        check_all_invariants(net)


class TestRandomizedCampaign:
    def _run(self, protocol, seed):
        wave = None if protocol == "wormhole" else WaveConfig()
        config = NetworkConfig(
            dims=(4, 4), protocol=protocol, wave=wave, seed=seed,
            reliability=ReliabilityConfig(
                timeout=128, backoff=2, max_timeout=1024, max_retries=8
            ),
        )
        topo = build_topology("mesh", (4, 4))
        sched = FaultSchedule.random_campaign(
            topo, mtbf=300, mttr=150, horizon=1500,
            rng=derive_fault_rng(seed),
        )
        net = Network(config, faults=sched)
        workload = uniform_workload(
            MessageFactory(),
            UniformPattern(16),
            num_nodes=16,
            offered_load=0.05,
            length=16,
            duration=800,
            rng=SimRandom(seed),
        )
        sim = Simulator(
            net, workload, deadlock_check_interval=128, progress_timeout=4000
        )
        result = sim.run(60_000)
        assert result.completed, "campaign run must drain"
        failures = len(net.stats.delivery_failures)
        assert result.injected == result.delivered + failures, (
            "every message must be delivered or explicitly reported"
        )
        check_all_invariants(net)
        if net.cycle >= sched.last_kill_cycle + teardown_latency(net):
            check_fault_isolation(net)
        return dict(net.stats.counters), result

    def test_no_silent_loss_clrp(self):
        counters, result = self._run("clrp", 0)
        assert counters.get("fault.links_killed", 0) >= 1
        assert result.delivered > 0

    def test_no_silent_loss_wormhole(self):
        counters, result = self._run("wormhole", 0)
        assert counters.get("fault.links_killed", 0) >= 1
        assert result.delivered > 0

    def test_bit_deterministic_repeat(self):
        c1, r1 = self._run("clrp", 3)
        c2, r2 = self._run("clrp", 3)
        assert c1 == c2
        assert (r1.cycles, r1.delivered, r1.injected) == (
            r2.cycles, r2.delivered, r2.injected
        )
