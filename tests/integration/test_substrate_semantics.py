"""Cross-module semantic checks the proofs rely on.

* Torus worms actually occupy the dateline VC classes they are supposed
  to (the deadlock argument is about *which* VCs cycles can form on).
* Adaptive routing really uses escape channels when the adaptive ones jam.
* Wormhole switching and circuit switching touch disjoint resources --
  the separation both Theorem proofs invoke ("PCS and wormhole switching
  do not interact. Each switching technique uses its own set of
  resources").
"""

import pytest

from repro.network.message import MessageFactory
from repro.network.network import Network
from repro.sim.config import NetworkConfig, WaveConfig, WormholeConfig
from repro.sim.engine import Simulator
from repro.sim.rng import SimRandom
from repro.traffic import UniformPattern, uniform_workload


class TestDatelineOccupancy:
    def test_wrap_crossing_worms_move_to_class1(self):
        """Sample buffers mid-flight: flits beyond the dateline of their
        dimension sit in class-1 VCs."""
        config = NetworkConfig(
            topology="torus", dims=(4, 4), protocol="wormhole", wave=None,
            wormhole=WormholeConfig(vcs=2, buffer_depth=2),
        )
        net = Network(config)
        topo = net.topology
        factory = MessageFactory()
        # A worm whose shortest path wraps in x: (3,0) -> (1,0).
        src = topo.node_at((3, 0))
        dst = topo.node_at((1, 0))
        net.inject(factory.make(src, dst, 24, 0))
        saw_class1 = False
        for _ in range(60):
            net.step()
            # Inspect the input buffer at the node after the wrap link.
            after_wrap = topo.node_at((0, 0))
            router = net.routers[after_wrap]
            for vc in range(2):
                for port in range(topo.num_ports):
                    ivc = router.inputs[port][vc]
                    if ivc.buffer and ivc.buffer[0].msg_id == 0:
                        if vc == 1:
                            saw_class1 = True
                        else:
                            pytest.fail(
                                "worm crossed the dateline on a class-0 VC"
                            )
            if net.is_idle():
                break
        assert saw_class1, "worm never observed beyond the dateline"

    def test_non_wrapping_worm_stays_class0(self):
        config = NetworkConfig(
            topology="torus", dims=(4, 4), protocol="wormhole", wave=None,
            wormhole=WormholeConfig(vcs=2, buffer_depth=2),
        )
        net = Network(config)
        topo = net.topology
        factory = MessageFactory()
        src = topo.node_at((0, 0))
        dst = topo.node_at((1, 0))  # one hop, no wrap
        net.inject(factory.make(src, dst, 8, 0))
        for _ in range(60):
            net.step()
            router = net.routers[dst]
            for vc in range(2):
                for port in range(topo.num_ports):
                    ivc = router.inputs[port][vc]
                    if ivc.buffer and ivc.buffer[0].msg_id == 0:
                        assert vc == 0
            if net.is_idle():
                break


class TestAdaptiveEscape:
    def test_escape_vc_used_under_adaptive_jam(self):
        """With the adaptive VC jammed by a stalled worm, a second worm
        must fall through to the escape channel (VC 0)."""
        config = NetworkConfig(
            dims=(3,), protocol="wormhole", wave=None,
            wormhole=WormholeConfig(vcs=2, routing="adaptive", buffer_depth=1),
        )
        net = Network(config)
        factory = MessageFactory()
        # Worm A: long, will hold the adaptive VC (vc 1) along 0->1->2.
        net.inject(factory.make(0, 2, 30, 0))
        net.run(4)
        # Worm B follows; adaptive VC taken -> escape VC 0.
        net.inject(factory.make(0, 2, 30, net.cycle))
        used_vcs = set()
        for _ in range(300):
            net.step()
            router = net.routers[1]
            for vc in range(2):
                for port in range(router.topology.num_ports):
                    ivc = router.inputs[port][vc]
                    if ivc.buffer:
                        used_vcs.add((ivc.buffer[0].msg_id, vc))
            if net.is_idle():
                break
        assert (0, 1) in used_vcs  # worm A on the adaptive VC
        assert (1, 0) in used_vcs  # worm B escaped on VC 0
        assert net.stats.messages[1].delivered > 0

    def test_adaptive_spreads_over_minimal_ports(self):
        """Adaptive traffic uses both dimension orders on a mesh."""
        config = NetworkConfig(
            dims=(4, 4), protocol="wormhole", wave=None,
            wormhole=WormholeConfig(vcs=3, routing="adaptive"),
        )
        net = Network(config)
        workload = uniform_workload(
            MessageFactory(),
            UniformPattern(16),
            num_nodes=16,
            offered_load=0.4,
            length=16,
            duration=1500,
            rng=SimRandom(2),
        )
        Simulator(net, workload).run(60_000)
        # Compare against DOR: adaptive must use strictly more distinct
        # (node, port) links for the same traffic matrix.
        dor_config = NetworkConfig(
            dims=(4, 4), protocol="wormhole", wave=None,
            wormhole=WormholeConfig(vcs=3, routing="dor"),
        )
        dor_net = Network(dor_config)
        dor_workload = uniform_workload(
            MessageFactory(),
            UniformPattern(16),
            num_nodes=16,
            offered_load=0.4,
            length=16,
            duration=1500,
            rng=SimRandom(2),
        )
        Simulator(dor_net, dor_workload).run(60_000)

        def used_links(n):
            return sum(
                1
                for r in n.routers
                for flits in r.link_flits
                if flits > 0
            )

        assert used_links(net) >= used_links(dor_net)


class TestResourceDisjointness:
    """'Each switching technique uses its own set of resources.'"""

    def test_circuit_traffic_moves_no_wormhole_flits(self):
        config = NetworkConfig(dims=(4, 4), protocol="clrp")
        net = Network(config)
        factory = MessageFactory()
        for i in range(6):
            net.inject(factory.make(0, 15, 64, i * 10))
        for _ in range(5000):
            net.step()
            if net.is_idle():
                break
        # All six went over circuits: S0 moved nothing.
        assert net.stats.count("wormhole.flits_moved") == 0
        assert net.stats.count("wave.transfers_completed") == 6

    def test_wormhole_traffic_reserves_no_channels(self):
        config = NetworkConfig(dims=(4, 4), protocol="wormhole", wave=None)
        net = Network(config)
        workload = uniform_workload(
            MessageFactory(),
            UniformPattern(16),
            num_nodes=16,
            offered_load=0.3,
            length=16,
            duration=500,
            rng=SimRandom(4),
        )
        Simulator(net, workload).run(30_000)
        assert net.plane is None  # no circuit machinery at all

    def test_fallback_coexists_with_circuits(self):
        """Phase-3 wormhole traffic and circuits share links but not
        channels: both planes active simultaneously, invariants hold."""
        from repro.verify import check_all_invariants

        config = NetworkConfig(
            dims=(3,),
            protocol="clrp",
            wave=WaveConfig(num_switches=1, misroute_budget=0),
        )
        net = Network(config)
        factory = MessageFactory()
        net.inject(factory.make(0, 2, 400, 0))  # circuit, long occupancy
        net.run(30)
        # This one will steal (phase 2) or fall back; either way both
        # planes carry traffic during the overlap.
        net.inject(factory.make(1, 2, 400, net.cycle))
        for _ in range(20_000):
            net.step()
            check_all_invariants(net)
            if net.is_idle():
                break
        assert all(m.delivered > 0 for m in net.stats.messages.values())
