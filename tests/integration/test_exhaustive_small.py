"""Bounded-exhaustive checks on tiny machines.

Hypothesis samples the configuration space; this file *enumerates* a
small but complete grid of timing and traffic interleavings on 2- and
3-node machines, where every possible protocol interaction (setup races,
force steals, release-request overtakes, queue reopens) is reachable.
Every grid point must deliver everything and keep the invariants -- a
poor man's model check over the timing dimension the proofs quantify
over.
"""

import itertools

import pytest

from repro.network.message import MessageFactory
from repro.network.network import Network
from repro.sim.config import NetworkConfig, WaveConfig, WormholeConfig
from repro.sim.engine import Simulator
from repro.verify import check_all_invariants, check_in_order_delivery


def run_grid_point(dims, offsets, lengths, hop_delay, k, variant):
    config = NetworkConfig(
        dims=dims,
        protocol="clrp",
        wormhole=WormholeConfig(vcs=1, buffer_depth=1),
        wave=WaveConfig(
            num_switches=k,
            misroute_budget=0,
            setup_hop_delay=hop_delay,
            circuit_cache_size=1,
            clrp_variant=variant,
        ),
    )
    net = Network(config)
    factory = MessageFactory()
    n = config.num_nodes
    msgs = []
    for i, (offset, length) in enumerate(zip(offsets, lengths)):
        src = i % n
        dst = (src + 1 + (i // n)) % n
        if dst == src:
            dst = (src + 1) % n
        msgs.append(factory.make(src, dst, length, offset))
    msgs.sort(key=lambda m: (m.created, m.msg_id))
    sim = Simulator(net, msgs, deadlock_check_interval=25,
                    progress_timeout=5_000)
    result = sim.run(60_000)
    assert result.delivered == result.injected, (
        f"lost messages at grid point {dims} {offsets} {lengths} "
        f"hop={hop_delay} k={k} {variant}"
    )
    check_all_invariants(net)
    assert check_in_order_delivery(net).clean
    return net


class TestTwoNodeGrid:
    """Every timing interleaving of three messages on a 2-node line."""

    @pytest.mark.parametrize("hop_delay", [1, 3])
    @pytest.mark.parametrize("variant", ["standard", "immediate_force"])
    def test_all_offset_interleavings(self, hop_delay, variant):
        for offsets in itertools.product([0, 2, 7], repeat=3):
            run_grid_point(
                (2,), offsets, [1, 4, 9], hop_delay, 1, variant
            )

    def test_all_length_mixes(self):
        for lengths in itertools.product([1, 16], repeat=3):
            run_grid_point((2,), (0, 1, 2), list(lengths), 1, 1, "standard")


class TestThreeNodeGrid:
    """Three nodes: crossing circuits and remote release requests occur."""

    @pytest.mark.parametrize("variant", ["standard", "eager_force",
                                         "single_switch", "immediate_force"])
    def test_contended_interleavings(self, variant):
        for offsets in itertools.product([0, 3, 11], repeat=3):
            run_grid_point((3,), offsets, [8, 8, 8], 1, 1, variant)

    def test_slow_control_plane(self):
        """Large hop delay stretches every race window."""
        for offsets in itertools.product([0, 5], repeat=3):
            run_grid_point((3,), offsets, [4, 12, 4], 5, 1, "standard")

    def test_two_switches(self):
        for offsets in itertools.product([0, 4], repeat=3):
            run_grid_point((3,), offsets, [8, 8, 8], 1, 2, "standard")
