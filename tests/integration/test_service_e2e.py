"""End-to-end service demo: the PR's acceptance scenario.

A client submits a 100+ job campaign to a local server; the results
must be bit-identical to a serial ``repro batch`` of the same campaign
document, and resubmitting the campaign must complete with 100% cache
hits and zero re-executed jobs.
"""

import json

import pytest

from repro.client import Session
from repro.orchestrate import ResultStore, parse_campaign, run_jobs
from repro.service.server import ServiceConfig, ServiceThread

# 2 protocols x 5 loads x 10 seeds + 4 explicit entries = 104 jobs.
CAMPAIGN_DOC = {
    "name": "e2e-demo",
    "defaults": {
        "topology": "mesh",
        "dims": "4x4",
        "max_cycles": 20_000,
        "workload": {"kind": "uniform", "load": 0.05,
                     "length": 6, "duration": 100},
    },
    "grid": {
        "protocol": ["wormhole", "clrp"],
        "workload.load": [0.02, 0.04, 0.06, 0.08, 0.1],
        "seed": list(range(10)),
    },
    "jobs": [
        {"protocol": "carp", "seed": seed} for seed in range(4)
    ],
}


def canonical(metrics: dict | None) -> str:
    """Bit-exact comparison form (JSON is the wire format both ways)."""
    return json.dumps(metrics, sort_keys=True)


@pytest.fixture(scope="module")
def serial_results(tmp_path_factory):
    """The ground truth: the same campaign through `repro batch`'s path."""
    name, specs = parse_campaign(CAMPAIGN_DOC)
    store = ResultStore(
        tmp_path_factory.mktemp("serial") / "results.jsonl"
    )
    outcomes = run_jobs(specs, jobs=1, store=store)
    assert all(o.ok for o in outcomes)
    return {spec.key(): o.metrics for spec, o in zip(specs, outcomes)}


class TestServiceEndToEnd:
    def test_campaign_via_client_matches_serial_batch(
        self, tmp_path, serial_results
    ):
        config = ServiceConfig(
            port=0, store=f"sqlite:{tmp_path / 'store'}",
            workers=2, executor="thread",
        )
        with ServiceThread(config) as url:
            session = Session(url, tenant="demo")

            # -- first submission: everything executes on the server --
            campaign = session.submit_campaign(CAMPAIGN_DOC)
            assert campaign.data["jobs"] >= 100
            streamed = [e for e in campaign.stream() if e.event == "job"]
            campaign.refresh()
            assert campaign.status == "done"
            assert len(streamed) == campaign.data["jobs"]

            by_key = {row["key"]: row for row in campaign.results()}
            assert set(by_key) == set(serial_results)
            for key, serial_metrics in serial_results.items():
                assert canonical(by_key[key]["metrics"]) == canonical(
                    serial_metrics
                ), f"server result for {key} diverged from serial batch"

            stats = session.store_stats()
            assert stats["executed"] == len(serial_results)
            assert stats["cache_hits"] == 0

            # -- resubmission: 100% cache hits, zero re-executions --
            again = session.submit_campaign(CAMPAIGN_DOC)
            again.wait(timeout=60)
            counts = again.data["counts"]
            assert counts["cached"] == campaign.data["jobs"]
            assert counts["ok"] == 0 and counts["failed"] == 0
            stats = session.store_stats()
            assert stats["executed"] == len(serial_results)  # unchanged
            assert stats["cache_hits"] == campaign.data["jobs"]

            # Cached results are the same bits again.
            for row in again.results():
                assert canonical(row["metrics"]) == canonical(
                    serial_results[row["key"]]
                )
