"""Acceptance: the scripted kill-and-resume chaos scenario.

A real ``repro serve`` subprocess is SIGKILLed mid-queue and
mid-execution, restarted with ``--resume`` each time, and has one pool
worker SIGKILLed mid-job -- while a single client stream rides its
``?since=`` cursor across every restart.  Every job must resolve
exactly once, the store must hold exactly one record per key, and the
metrics must be bit-identical to a serial ``run_jobs`` of the same
campaign.  (The harness itself raises ChaosFailure on any violation;
see repro.service.chaos for the invariant list.)
"""

import json

from repro.service.chaos import run_chaos_scenario


def test_kill_and_resume_scenario_end_to_end(tmp_path):
    report = run_chaos_scenario(
        tmp_path / "chaos", jobs=6, timeout_s=120.0
    )
    assert report["ok"]
    assert report["jobs"] == 6
    assert report["events"] == 6
    assert report["records"] == 6
    assert report["counts"]["failed"] == 0
    assert report["graceful_exit_code"] == 0
    phases = [p["phase"] for p in report["phases"]]
    assert phases == ["kill-mid-queue", "kill-mid-execution", "kill-worker"]

    # The journal survived compaction across two resumes and still
    # accounts for every job exactly once.
    journal = tmp_path / "chaos" / "chaos-journal.jsonl"
    finishes = [
        op["job_id"]
        for op in map(json.loads, journal.open())
        if op["op"] == "finish"
    ]
    assert len(finishes) == 6 and len(set(finishes)) == 6
