"""Property-based whole-system tests.

Hypothesis drives random (but small) machine configurations and workloads
through the full stack; for every draw the paper's global guarantee must
hold: every message delivered, no deadlock, invariants intact.  This is
the widest net in the suite -- it routinely explores corner combinations
(k=1 with tiny caches, immediate_force with misroute 0, torus adaptive
with buffer modelling) no hand-written scenario covers.
"""

import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.network.message import MessageFactory
from repro.network.network import Network
from repro.sim.config import NetworkConfig, WaveConfig, WormholeConfig
from repro.sim.engine import Simulator
from repro.sim.rng import SimRandom
from repro.traffic import UniformPattern, compile_directives, uniform_workload
from repro.verify import check_all_invariants

wave_configs = st.builds(
    WaveConfig,
    num_switches=st.integers(1, 3),
    misroute_budget=st.integers(0, 3),
    wave_clock_ratio=st.sampled_from([1.0, 2.0, 4.0]),
    channel_width_factor=st.sampled_from([0.5, 1.0]),
    window=st.sampled_from([16, 64, 256]),
    circuit_cache_size=st.integers(1, 6),
    replacement=st.sampled_from(["lru", "lfu", "fifo", "random"]),
    clrp_variant=st.sampled_from(
        ["standard", "eager_force", "single_switch", "immediate_force"]
    ),
    model_buffers=st.booleans(),
    buffer_realloc_penalty=st.sampled_from([0, 50]),
)


@st.composite
def system_draws(draw):
    protocol = draw(st.sampled_from(["wormhole", "clrp", "carp"]))
    topology, dims = draw(
        st.sampled_from(
            [
                ("mesh", (3, 3)),
                ("mesh", (4, 2)),
                ("torus", (3, 3)),
                ("hypercube", (2, 2, 2)),
            ]
        )
    )
    routing = draw(st.sampled_from(["dor", "adaptive"]))
    min_vcs = 2 if topology == "torus" else 1
    if routing == "adaptive":
        min_vcs += 1
    vcs = draw(st.integers(min_vcs, min_vcs + 2))
    wormhole = WormholeConfig(vcs=vcs, routing=routing,
                              buffer_depth=draw(st.integers(1, 4)))
    wave = None if protocol == "wormhole" else draw(wave_configs)
    config = NetworkConfig(
        topology=topology,
        dims=dims,
        protocol=protocol,
        wormhole=wormhole,
        wave=wave,
        seed=draw(st.integers(0, 2**16)),
    )
    load = draw(st.sampled_from([0.05, 0.2, 0.5]))
    length = draw(st.sampled_from([1, 4, 17, 64]))
    wl_seed = draw(st.integers(0, 2**16))
    return config, load, length, wl_seed


@pytest.mark.slow
@settings(
    max_examples=60,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow, HealthCheck.data_too_large],
)
@given(system_draws())
def test_every_configuration_delivers_everything(draw):
    config, load, length, wl_seed = draw
    net = Network(config)
    msgs = uniform_workload(
        MessageFactory(),
        UniformPattern(config.num_nodes),
        num_nodes=config.num_nodes,
        offered_load=load,
        length=length,
        duration=400,
        rng=SimRandom(wl_seed),
    )
    if config.protocol == "carp":
        items, _ = compile_directives(msgs, min_messages=2, min_flits=2)
    else:
        items = msgs
    sim = Simulator(
        net, items, deadlock_check_interval=50, progress_timeout=25_000
    )
    result = sim.run(150_000)
    assert result.delivered == result.injected, (
        f"lost {result.injected - result.delivered} messages under "
        f"{config.describe()}"
    )
    check_all_invariants(net)
    # After draining, no circuit may be stuck mid-lifecycle.
    if net.plane is not None:
        assert net.plane.is_idle()
        for circuit in net.plane.table.live_circuits():
            assert not circuit.in_use
