"""Fault-tolerance integration tests (E7 foundations).

Section 2 of the paper: the MB-m probe protocol "is very resilient to
static faults in the network".  These tests inject static link faults and
check that circuits route around them while deterministic wormhole paths
cannot.
"""

import pytest

from repro.network.message import MessageFactory
from repro.network.network import Network
from repro.sim.config import NetworkConfig, WaveConfig
from repro.sim.engine import Simulator
from repro.sim.rng import SimRandom
from repro.topology import FaultSet, build_topology
from repro.verify import check_all_invariants


def faulty_net(fault_fraction, seed=1, **wave_kwargs):
    config = NetworkConfig(
        dims=(4, 4), protocol="clrp", wave=WaveConfig(**wave_kwargs), seed=seed
    )
    topo = build_topology(config.topology, config.dims)
    faults = FaultSet(topo)
    faults.fail_random_links(fault_fraction, SimRandom(seed))
    net = Network(config, faults=faults)
    return net, faults


class TestProbesRouteAroundFaults:
    def test_circuit_avoids_faulty_links(self):
        net, faults = faulty_net(0.15, misroute_budget=3)
        factory = MessageFactory()
        for dst in (5, 10, 15):
            net.inject(factory.make(0, dst, 32, net.cycle))
            for _ in range(5000):
                net.step()
                if net.is_idle():
                    break
        for circuit in net.plane.table.live_circuits():
            for node, port in circuit.path:
                assert not faults.is_faulty(node, port)
        check_all_invariants(net)

    def test_misroute_budget_helps_with_faults(self):
        """More misroutes -> more successful setups under faults.

        Measured at the plane level, one probe at a time, so the only
        obstacle is the faults themselves (no CLRP eviction churn).
        """
        from repro.circuits.circuit import CircuitState
        from repro.circuits.plane import WavePlane
        from repro.sim.config import WaveConfig
        from repro.sim.stats import StatsCollector

        topo = build_topology("mesh", (4, 4))
        faults = FaultSet(topo)
        faults.fail_random_links(0.25, SimRandom(3))

        def successes(m):
            ok = 0
            for s in range(16):
                d = (s + 7) % 16
                plane = WavePlane(
                    topo,
                    WaveConfig(num_switches=1, misroute_budget=m),
                    StatsCollector(),
                    faults,
                )
                class _Eng:
                    def probe_failed(self, probe, circuit, cycle):
                        pass

                    def circuit_established(self, circuit, cycle):
                        pass
                for n in range(16):
                    plane.register_engine(n, _Eng())
                circuit, _ = plane.launch_probe(s, d, 0, force=False, cycle=0)
                cycle = 1
                while not plane.is_idle() and cycle < 5000:
                    plane.step(cycle)
                    cycle += 1
                if circuit.state is CircuitState.ESTABLISHED:
                    ok += 1
            return ok

        s0, s4 = successes(0), successes(4)
        assert s4 >= s0
        assert s4 > 0

    def test_all_messages_still_delivered_with_faults(self):
        """Fallback keeps the network functional when setups fail...

        ...provided wormhole paths exist: we keep the fault fraction low
        enough that dimension-order paths stay intact for this seed.
        """
        net, faults = faulty_net(0.07, seed=2, misroute_budget=3)
        factory = MessageFactory()
        msgs = [
            factory.make(s, (s + 5) % 16, 24, s * 3)
            for s in range(16)
        ]
        sim = Simulator(net, msgs, progress_timeout=30_000)
        result = sim.run(120_000)
        # Some may be undeliverable if DOR hits a dead link after a failed
        # setup; assert the vast majority arrive and nothing wedges.
        assert result.delivered >= result.injected * 0.8
        check_all_invariants(net)
