"""Theorems 1-4 as stress tests: every message delivered in finite time.

The paper's central guarantee is that CLRP and CARP "are always able to
deliver messages, and are deadlock- and livelock-free".  These tests push
randomized traffic through every protocol with the deadlock detector and
probe-work monitor armed, across seeds, and assert complete delivery.
"""

import pytest

from repro.analysis.experiments import run_experiment
from repro.network.message import MessageFactory
from repro.network.network import Network
from repro.sim.config import NetworkConfig, WaveConfig, WormholeConfig
from repro.sim.engine import Simulator
from repro.sim.rng import SimRandom
from repro.traffic import (
    LocalityWorkloadBuilder,
    UniformPattern,
    compile_directives,
    make_pattern,
    uniform_workload,
)
from repro.verify import ProbeWorkMonitor, check_all_invariants


def uniform(config, load, seed, length=24, duration=1200):
    return uniform_workload(
        MessageFactory(),
        UniformPattern(config.num_nodes),
        num_nodes=config.num_nodes,
        offered_load=load,
        length=length,
        duration=duration,
        rng=SimRandom(seed),
    )


def run_armed(config, workload, max_cycles=120_000):
    """Run with deadlock checks, progress monitor and probe-work bound."""
    net = Network(config)
    monitor = ProbeWorkMonitor(net) if net.plane is not None else None

    def on_cycle(n):
        if monitor is not None and n.cycle % 20 == 0:
            monitor.check()

    sim = Simulator(
        net,
        workload,
        deadlock_check_interval=100,
        progress_timeout=30_000,
        on_cycle=on_cycle,
    )
    result = sim.run(max_cycles)
    check_all_invariants(net)
    return net, result


class TestTheorem1And3CLRP:
    """CLRP delivers everything: deadlock- and livelock-free."""

    @pytest.mark.parametrize("seed", [1, 2, 3])
    def test_stressed_small_cache(self, seed):
        config = NetworkConfig(
            dims=(4, 4),
            protocol="clrp",
            wave=WaveConfig(num_switches=1, circuit_cache_size=2,
                            misroute_budget=1),
            seed=seed,
        )
        net, result = run_armed(config, uniform(config, 0.4, seed))
        assert result.completed
        assert result.delivered == result.injected

    def test_past_saturation_still_delivers(self):
        config = NetworkConfig(dims=(4, 4), protocol="clrp")
        net, result = run_armed(config, uniform(config, 0.9, 11, length=48),
                                max_cycles=250_000)
        assert result.delivered == result.injected

    def test_torus_adaptive_combo(self):
        config = NetworkConfig(
            topology="torus",
            dims=(4, 4),
            protocol="clrp",
            wormhole=WormholeConfig(vcs=4, routing="adaptive"),
        )
        net, result = run_armed(config, uniform(config, 0.5, 5))
        assert result.delivered == result.injected

    def test_locality_traffic(self):
        config = NetworkConfig(dims=(4, 4), protocol="clrp")
        builder = LocalityWorkloadBuilder(
            Network(config).topology, reuse=8.0, spatial_decay=0.6
        )
        workload = builder.build(
            MessageFactory(),
            offered_load=0.3,
            length=32,
            duration=1500,
            rng=SimRandom(21),
        )
        net, result = run_armed(config, workload)
        assert result.delivered == result.injected
        # Reuse must show up as circuit hits.
        assert result.stats.count("mode.circuit_hit") > 0


class TestTheorem2And4CARP:
    @pytest.mark.parametrize("seed", [4, 5])
    def test_compiled_uniform_traffic(self, seed):
        config = NetworkConfig(dims=(4, 4), protocol="carp")
        msgs = uniform(config, 0.3, seed)
        items, _report = compile_directives(msgs, min_messages=3, min_flits=48)
        net, result = run_armed(config, items)
        assert result.delivered == result.injected

    def test_compiled_locality_traffic(self):
        config = NetworkConfig(dims=(4, 4), protocol="carp")
        builder = LocalityWorkloadBuilder(
            Network(config).topology, reuse=12.0, spatial_decay=0.7
        )
        msgs = builder.build(
            MessageFactory(),
            offered_load=0.35,
            length=32,
            duration=1500,
            rng=SimRandom(31),
        )
        items, report = compile_directives(msgs, min_messages=4)
        net, result = run_armed(config, items)
        assert result.delivered == result.injected
        assert report.messages_hinted > 0
        assert result.stats.count("mode.circuit_hit") > 0


class TestInOrderDelivery:
    """Section 5: 'once a circuit has been established between two nodes,
    in-order delivery is guaranteed for all the messages transmitted
    between those nodes'."""

    def test_circuit_messages_in_order_per_pair(self):
        config = NetworkConfig(dims=(4, 4), protocol="clrp")
        net = Network(config)
        factory = MessageFactory()
        msgs = [factory.make(0, 9, 64, i) for i in range(12)]
        sim = Simulator(net, msgs)
        sim.run(100_000)
        deliveries = [net.stats.messages[m.msg_id].delivered for m in msgs]
        assert all(d > 0 for d in deliveries)
        assert deliveries == sorted(deliveries)


class TestPatternCoverage:
    """Every structured pattern drains under every protocol."""

    @pytest.mark.parametrize("pattern_name", [
        "transpose", "bit_reversal", "bit_complement", "neighbor",
        "permutation", "hotspot",
    ])
    @pytest.mark.parametrize("protocol", ["wormhole", "clrp"])
    def test_pattern_drains(self, pattern_name, protocol):
        config = NetworkConfig(
            dims=(4, 4),
            protocol=protocol,
            wave=None if protocol == "wormhole" else WaveConfig(),
        )
        net = Network(config)
        pattern = make_pattern(pattern_name, net.topology,
                               SimRandom(1).stream("perm"))
        workload = uniform_workload(
            MessageFactory(),
            pattern,
            num_nodes=16,
            offered_load=0.2,
            length=24,
            duration=800,
            rng=SimRandom(7),
        )
        sim = Simulator(net, workload, deadlock_check_interval=100,
                        progress_timeout=20_000)
        result = sim.run(120_000)
        assert result.delivered == result.injected
        check_all_invariants(net)
