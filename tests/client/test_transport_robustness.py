"""Client transport failure handling against scripted fake servers.

Each fake is a real listening socket driven by a thread, scripted to
misbehave in one specific way (close before the status line, go silent
mid-stream, refuse the first N connections...).  The assertions pin the
failure taxonomy: clean classifiable errors, automatic retry of
idempotent requests, and exactly-once resumption via ``?since=``.
"""

import asyncio
import json
import socket
import threading
import time

import pytest

from repro.client import Session, StreamInterrupted, TransportError
from repro.client.session import AsyncSession
from repro.client.transport import (
    AsyncHttpTransport,
    HttpTransport,
    backoff_delays,
)


class ScriptedServer:
    """A one-thread TCP server running a handler per connection."""

    def __init__(self, handler):
        self.handler = handler
        self.sock = socket.socket()
        self.sock.setsockopt(socket.SOL_SOCKET, socket.SO_REUSEADDR, 1)
        self.sock.bind(("127.0.0.1", 0))
        self.sock.listen(8)
        self.port = self.sock.getsockname()[1]
        self.url = f"http://127.0.0.1:{self.port}"
        self.connections = 0
        self._stop = threading.Event()
        self._thread = threading.Thread(target=self._serve, daemon=True)
        self._thread.start()

    def _serve(self):
        self.sock.settimeout(0.1)
        while not self._stop.is_set():
            try:
                conn, _ = self.sock.accept()
            except socket.timeout:
                continue
            except OSError:
                return
            self.connections += 1
            try:
                self.handler(conn, self.connections)
            finally:
                try:
                    conn.close()
                except OSError:
                    pass

    def close(self):
        self._stop.set()
        self._thread.join(timeout=5)
        self.sock.close()


def read_request(conn) -> bytes:
    conn.settimeout(5)
    data = b""
    while b"\r\n\r\n" not in data:
        chunk = conn.recv(4096)
        if not chunk:
            break
        data += chunk
    return data


def http_response(body: dict, status: int = 200) -> bytes:
    payload = json.dumps(body).encode()
    return (
        f"HTTP/1.1 {status} X\r\nContent-Type: application/json\r\n"
        f"Content-Length: {len(payload)}\r\nConnection: close\r\n\r\n"
    ).encode() + payload


@pytest.fixture
def scripted():
    servers = []

    def make(handler) -> ScriptedServer:
        server = ScriptedServer(handler)
        servers.append(server)
        return server

    yield make
    for server in servers:
        server.close()


class TestPrematureClose:
    def test_async_close_before_status_line_is_clean_error(self, scripted):
        """Historically an opaque IndexError from ''.split()[1]."""
        server = scripted(lambda conn, n: read_request(conn))  # then close

        async def go():
            transport = AsyncHttpTransport(server.url)
            with pytest.raises(TransportError) as err:
                await transport.request("GET", "/health")
            assert "closed the connection" in str(err.value)

        asyncio.run(go())

    def test_async_garbled_status_line_is_clean_error(self, scripted):
        def handler(conn, n):
            read_request(conn)
            conn.sendall(b"garbage that is not HTTP\r\n\r\n")

        server = scripted(handler)

        async def go():
            transport = AsyncHttpTransport(server.url)
            with pytest.raises(TransportError) as err:
                await transport.request("GET", "/health")
            assert "malformed" in str(err.value)

        asyncio.run(go())

    def test_blocking_close_before_status_line_is_transport_error(
        self, scripted
    ):
        server = scripted(lambda conn, n: read_request(conn))
        transport = HttpTransport(server.url, retries=0)
        with pytest.raises(TransportError):
            transport.request("GET", "/health")


class TestIdempotentRetry:
    def test_get_retries_through_transient_deaths(self, scripted):
        """First two connections die pre-response; the third answers."""

        def handler(conn, n):
            read_request(conn)
            if n < 3:
                return  # close without responding
            conn.sendall(http_response({"status": "ok"}))

        server = scripted(handler)
        transport = HttpTransport(
            server.url, retries=4, backoff_base=0.01
        )
        assert transport.request("GET", "/health") == {"status": "ok"}
        assert server.connections == 3

    def test_post_is_never_auto_retried(self, scripted):
        def handler(conn, n):
            read_request(conn)  # always die pre-response

        server = scripted(handler)
        transport = HttpTransport(
            server.url, retries=4, backoff_base=0.01
        )
        with pytest.raises(TransportError):
            transport.request("POST", "/api/campaigns", body={"x": 1})
        assert server.connections == 1  # exactly one attempt

    def test_retry_budget_exhaustion_raises_last_error(self, scripted):
        server = scripted(lambda conn, n: read_request(conn))
        transport = HttpTransport(
            server.url, retries=2, backoff_base=0.01
        )
        with pytest.raises(TransportError):
            transport.request("GET", "/health")
        assert server.connections == 3  # 1 try + 2 retries

    def test_server_4xx_is_never_retried(self, scripted):
        def handler(conn, n):
            read_request(conn)
            conn.sendall(http_response({"error": "nope"}, status=404))

        server = scripted(handler)
        transport = HttpTransport(
            server.url, retries=4, backoff_base=0.01
        )
        with pytest.raises(Exception) as err:
            transport.request("GET", "/api/campaigns/ghost")
        assert not isinstance(err.value, TransportError)
        assert server.connections == 1


class TestStreamInterruption:
    def test_idle_stream_times_out_as_stream_interrupted(self, scripted):
        def handler(conn, n):
            read_request(conn)
            conn.sendall(b"HTTP/1.1 200 X\r\nConnection: close\r\n\r\n")
            conn.sendall(b'{"event": "job", "seq": 0}\n')
            time.sleep(3)  # silent well past the idle timeout

        server = scripted(handler)
        transport = HttpTransport(server.url, idle_timeout=0.2)
        events = []
        with pytest.raises(StreamInterrupted) as err:
            for event in transport.stream("/api/x/stream"):
                events.append(event)
        assert events == [{"event": "job", "seq": 0}]
        assert "no stream data" in str(err.value)

    def test_mid_stream_death_is_stream_interrupted_not_raw(self, scripted):
        def handler(conn, n):
            read_request(conn)
            conn.sendall(b"HTTP/1.1 200 X\r\nConnection: close\r\n\r\n")
            conn.sendall(b'{"event": "job", "seq": 0}\n')
            conn.setsockopt(
                socket.SOL_SOCKET, socket.SO_LINGER,
                b"\x01\x00\x00\x00\x00\x00\x00\x00",  # RST on close
            )

        server = scripted(handler)
        transport = HttpTransport(server.url, idle_timeout=5)
        events = []
        with pytest.raises(StreamInterrupted):
            for event in transport.stream("/api/x/stream"):
                events.append(event)
        assert events == [{"event": "job", "seq": 0}]


class TestSessionReconnect:
    def _event(self, seq, status="ok"):
        return {
            "event": "job", "seq": seq, "id": f"j-{seq}",
            "status": status,
        }

    def test_stream_resumes_with_since_cursor_exactly_once(self, scripted):
        """Server dies after 2 events; the client must reconnect asking
        for ?since=2 and never see a duplicate."""
        seen_paths = []

        def handler(conn, n):
            request = read_request(conn)
            seen_paths.append(request.split(b" ")[1].decode())
            conn.sendall(b"HTTP/1.1 200 X\r\nConnection: close\r\n\r\n")
            if n == 1:
                conn.sendall(json.dumps(self._event(0)).encode() + b"\n")
                conn.sendall(json.dumps(self._event(1)).encode() + b"\n")
                # die mid-stream, no terminal event
            else:
                conn.sendall(json.dumps(self._event(2)).encode() + b"\n")
                conn.sendall(
                    b'{"event": "end", "status": "done", "counts": {}}\n'
                )

        server = scripted(handler)
        session = Session(server.url, reconnect_backoff_s=0.01)
        # Build the Campaign element directly (no real GET needed):
        # stream() is the unit under test.
        from repro.client.session import Campaign

        events = list(
            Campaign(session, {"id": "c-1", "name": "x"}).stream()
        )
        seqs = [e.seq for e in events if e.event == "job"]
        assert seqs == [0, 1, 2]  # exactly once, in order
        assert events[-1].terminal
        assert seen_paths[0] == "/api/campaigns/c-1/stream"
        assert seen_paths[1] == "/api/campaigns/c-1/stream?since=2"

    def test_reconnect_false_propagates_interruption(self, scripted):
        def handler(conn, n):
            read_request(conn)
            conn.sendall(b"HTTP/1.1 200 X\r\nConnection: close\r\n\r\n")
            conn.sendall(json.dumps(self._event(0)).encode() + b"\n")

        server = scripted(handler)
        session = Session(server.url)
        from repro.client.session import Campaign

        with pytest.raises(StreamInterrupted):
            list(
                Campaign(session, {"id": "c-1", "name": "x"})
                .stream(reconnect=False)
            )

    def test_reconnect_budget_exhaustion_raises(self, scripted):
        def handler(conn, n):
            read_request(conn)
            conn.sendall(b"HTTP/1.1 200 X\r\nConnection: close\r\n\r\n")
            # Never any events, never a terminal: hopeless server.

        server = scripted(handler)
        session = Session(
            server.url, reconnect_attempts=2, reconnect_backoff_s=0.01
        )
        from repro.client.session import Campaign

        with pytest.raises(StreamInterrupted):
            list(Campaign(session, {"id": "c-1", "name": "x"}).stream())
        assert server.connections == 3  # 1 try + 2 reconnects

    def test_async_stream_resumes_with_since_cursor(self, scripted):
        def handler(conn, n):
            read_request(conn)
            conn.sendall(b"HTTP/1.1 200 X\r\nConnection: close\r\n\r\n")
            if n == 1:
                conn.sendall(json.dumps(self._event(0)).encode() + b"\n")
            else:
                conn.sendall(json.dumps(self._event(1)).encode() + b"\n")
                conn.sendall(
                    b'{"event": "end", "status": "done", "counts": {}}\n'
                )

        server = scripted(handler)

        async def go():
            session = AsyncSession(
                server.url, reconnect_backoff_s=0.01
            )
            from repro.client.session import AsyncCampaign

            campaign = AsyncCampaign(session, {"id": "c-1", "name": "x"})
            return [e async for e in campaign.stream()]

        events = asyncio.run(go())
        seqs = [e.seq for e in events if e.event == "job"]
        assert seqs == [0, 1]


class TestBackoff:
    def test_delays_are_capped_and_jittered(self):
        import random

        delays = list(
            backoff_delays(8, base=0.25, cap=2.0, rng=random.Random(7))
        )
        assert len(delays) == 8
        # Jitter keeps every delay within [0.5x, 1x] of the raw value.
        raw = [min(2.0, 0.25 * 2 ** n) for n in range(8)]
        for delay, ceiling in zip(delays, raw):
            assert 0.5 * ceiling <= delay <= ceiling
        assert max(delays) <= 2.0

    def test_zero_attempts_yields_nothing(self):
        assert list(backoff_delays(0)) == []
