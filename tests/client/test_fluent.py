"""Fluent client surface: builders, lazy collections, async session."""

import asyncio

import pytest

from repro.client import Session
from repro.client.session import JobEvent, _lookup
from repro.orchestrate.spec import JobSpec, WorkloadRecipe
from repro.service.server import ServiceConfig, ServiceThread
from repro.sim.config import NetworkConfig


def tiny_spec(load=0.05, seed=0) -> JobSpec:
    return JobSpec(
        config=NetworkConfig(dims=(4, 4), protocol="wormhole", wave=None,
                             seed=seed),
        workload=WorkloadRecipe.make(
            "uniform", load=load, length=8, duration=150
        ),
        label=f"tiny@{load:g}#{seed}",
        max_cycles=20_000,
    )


@pytest.fixture
def service(tmp_path):
    config = ServiceConfig(
        port=0, store=f"sqlite:{tmp_path / 'store'}",
        workers=2, executor="thread",
    )
    with ServiceThread(config) as url:
        yield url


class TestCampaignBuilder:
    def base_builder(self, session):
        return (
            session.campaign("sweep")
            .defaults(
                dims="4x4", protocol="wormhole", max_cycles=20_000,
                workload={"kind": "uniform", "load": 0.05,
                          "length": 8, "duration": 150},
            )
        )

    def test_document_accumulates_fluently(self):
        doc = (
            Session("http://127.0.0.1:1")  # never contacted
            .campaign("sweep")
            .defaults(protocol="clrp", dims="8x8")
            .defaults(max_cycles=50_000)
            .grid({"workload.load": [0.1, 0.2]})
            .grid(seed=[0, 1])
            .job(protocol="carp")
            .document()
        )
        assert doc["name"] == "sweep"
        assert doc["defaults"] == {"protocol": "clrp", "dims": "8x8",
                                   "max_cycles": 50_000}
        assert doc["grid"] == {"workload.load": [0.1, 0.2],
                               "seed": [0, 1]}
        assert doc["jobs"] == [{"protocol": "carp"}]

    def test_build_submit_wait(self, service):
        session = Session(service)
        campaign = (
            self.base_builder(session)
            .grid(seed=[0, 1])
            .priority(3)
            .submit()
            .wait(timeout=60)
        )
        assert campaign.status == "done"
        assert campaign.data["priority"] == 3
        assert len(campaign.jobs.all()) == 2

    def test_builder_tenant_overrides_session(self, service):
        session = Session(service, tenant="alice")
        campaign = (
            self.base_builder(session).grid(seed=[0]).tenant("bob").submit()
        )
        assert campaign.data["tenant"] == "bob"


class TestJobCollection:
    @pytest.fixture
    def campaign(self, service):
        session = Session(service)
        specs = [tiny_spec(load, seed) for load in (0.05, 0.1)
                 for seed in (0, 1)]
        return session.submit_specs(specs, name="grid").wait(timeout=60)

    def test_filters_compose_lazily(self, campaign):
        collection = campaign.jobs.filter(status="ok")
        narrowed = collection.filter(
            lambda j: j["label"].endswith("#1")
        )
        assert collection.count() == 4
        assert narrowed.count() == 2
        assert {j.label for j in narrowed} == {"tiny@0.05#1", "tiny@0.1#1"}

    def test_dotted_path_filter(self, campaign):
        injected = campaign.jobs.first().refresh().metrics["injected"]
        same = campaign.jobs.filter(**{"metrics.injected": injected})
        assert same.count() >= 1

    def test_first_and_len(self, campaign):
        assert len(campaign.jobs) == 4
        assert campaign.jobs.filter(status="failed").first() is None
        assert campaign.jobs.filter(status="nope").count() == 0

    def test_resubmit_hits_cache(self, campaign, service):
        session = Session(service)
        before = session.store_stats()["executed"]
        again = campaign.jobs.filter(status="ok").resubmit(
            name="again"
        ).wait(timeout=60)
        assert again.counts["cached"] == 4
        assert session.store_stats()["executed"] == before

    def test_resubmit_empty_collection_raises(self, campaign):
        with pytest.raises(ValueError, match="no jobs match"):
            campaign.jobs.filter(status="failed").resubmit()

    def test_session_wide_jobs_query(self, campaign, service):
        session = Session(service)
        assert len(session.jobs.filter(status="ok")) == 4


class TestJobEvent:
    def test_from_dict_ignores_unknown_fields(self):
        event = JobEvent.from_dict({
            "event": "job", "id": "j-000001", "status": "ok",
            "metrics": {"x": 1}, "seq": 7, "brand_new_field": True,
        })
        assert event.id == "j-000001"
        assert event.metrics == {"x": 1}
        assert not event.terminal

    def test_terminal_detection(self):
        assert JobEvent.from_dict({"event": "end", "status": "done"}).terminal

    def test_lookup_dotted_paths(self):
        data = {"metrics": {"observe": {"samples": 3}}, "flat": 1}
        assert _lookup(data, "metrics.observe.samples") == 3
        assert _lookup(data, "flat") == 1
        assert _lookup(data, "metrics.missing.deep") is None


class TestAsyncSession:
    def test_async_submit_stream_wait(self, service):
        from repro.client import AsyncSession

        async def scenario():
            session = AsyncSession(service)
            health = await session.health()
            assert health["status"] == "ok"
            campaign = await session.submit_campaign({
                "name": "async",
                "defaults": {
                    "dims": "4x4", "protocol": "wormhole",
                    "max_cycles": 20_000,
                    "workload": {"kind": "uniform", "load": 0.05,
                                 "length": 8, "duration": 150},
                },
                "grid": {"seed": [0, 1]},
            })
            events = []
            async for event in campaign.stream():
                events.append(event)
                if event.terminal:
                    break
            await campaign.refresh()
            jobs = await campaign.jobs(status="ok")
            return events, campaign.status, jobs

        events, status, jobs = asyncio.run(scenario())
        assert status == "done"
        assert events[-1].terminal
        assert len([e for e in events if e.event == "job"]) == 2
        assert len(jobs) == 2
