"""ServiceState: three-gate submission, coalescing, cancel, events.

Driven synchronously (no event loop): the state object is plain data
that the asyncio server happens to drive.
"""

import asyncio

from repro.orchestrate import ResultStore
from repro.orchestrate.spec import JobSpec, WorkloadRecipe
from repro.service.model import (
    STATUS_CACHED,
    STATUS_CANCELLED,
    STATUS_OK,
    STATUS_QUEUED,
)
from repro.service.scheduler import FairScheduler
from repro.service.state import ServiceState
from repro.sim.config import NetworkConfig


def tiny_spec(load=0.05, seed=0) -> JobSpec:
    return JobSpec(
        config=NetworkConfig(dims=(4, 4), protocol="wormhole", wave=None,
                             seed=seed),
        workload=WorkloadRecipe.make(
            "uniform", load=load, length=8, duration=150
        ),
        label=f"tiny@{load:g}#{seed}",
    )


def make_state(tmp_path) -> ServiceState:
    return ServiceState(
        ResultStore(tmp_path / "results.jsonl"), FairScheduler()
    )


def run_queued(state: ServiceState) -> int:
    """Drain the scheduler, resolving each job as a fake success."""
    ran = 0
    while True:
        job = state.scheduler.acquire()
        if job is None:
            return ran
        state.mark_running(job)
        state.finish(
            job, metrics={"load": job.spec.workload.param("load")},
            failure=None, elapsed_s=0.1,
        )
        ran += 1


class TestSubmissionGates:
    def test_store_dedup_resolves_instantly(self, tmp_path):
        state = make_state(tmp_path)
        spec = tiny_spec()
        state.store.record(spec.key(), spec_dict=spec.to_dict(),
                           status="ok", metrics={"cached": True})
        campaign = state.submit("camp", [spec])
        [job] = campaign.jobs
        assert job.status == STATUS_CACHED
        assert job.from_cache and job.metrics == {"cached": True}
        assert state.cache_hits == 1
        assert state.scheduler.pending() == 0
        assert campaign.done and campaign.status == "done"

    def test_failed_store_records_are_re_executed(self, tmp_path):
        state = make_state(tmp_path)
        spec = tiny_spec()
        state.store.record(spec.key(), spec_dict=spec.to_dict(),
                           status="failed",
                           failure={"kind": "x", "message": "y"})
        campaign = state.submit("camp", [spec])
        assert campaign.jobs[0].status == STATUS_QUEUED
        assert state.scheduler.pending() == 1

    def test_identical_inflight_specs_coalesce(self, tmp_path):
        state = make_state(tmp_path)
        spec = tiny_spec()
        first = state.submit("one", [spec], tenant="alice")
        second = state.submit("two", [spec], tenant="bob")
        primary, follower = first.jobs[0], second.jobs[0]
        assert follower.coalesced_with == primary.job_id
        assert state.coalesced == 1
        assert state.scheduler.pending() == 1  # one execution for both
        assert run_queued(state) == 1
        assert primary.status == STATUS_OK
        assert follower.status == STATUS_OK and follower.from_cache
        assert follower.metrics == primary.metrics
        assert second.done

    def test_new_work_queues_and_records_on_finish(self, tmp_path):
        state = make_state(tmp_path)
        specs = [tiny_spec(load) for load in (0.05, 0.1)]
        campaign = state.submit("camp", specs, tenant="t")
        assert state.scheduler.pending() == 2
        assert run_queued(state) == 2
        assert campaign.status == "done"
        assert state.executed == 2
        # Finishing recorded through the store under the campaign name.
        for spec in specs:
            record = state.store.get(spec.key())
            assert record["status"] == "ok"
            assert record["campaign"] == "camp"

    def test_resubmission_after_finish_is_all_cached(self, tmp_path):
        state = make_state(tmp_path)
        specs = [tiny_spec(load) for load in (0.05, 0.1)]
        state.submit("first", specs)
        run_queued(state)
        again = state.submit("second", specs)
        assert all(j.status == STATUS_CACHED for j in again.jobs)
        assert state.executed == 2 and state.cache_hits == 2


class TestFailures:
    def test_failure_propagates_to_followers_without_cache_flag(
        self, tmp_path
    ):
        state = make_state(tmp_path)
        spec = tiny_spec()
        first = state.submit("one", [spec])
        second = state.submit("two", [spec])
        job = state.scheduler.acquire()
        state.mark_running(job)
        state.finish(job, metrics=None,
                     failure={"kind": "exception", "message": "boom"},
                     elapsed_s=0.1)
        assert first.jobs[0].status == "failed"
        assert second.jobs[0].status == "failed"
        assert not second.jobs[0].from_cache
        assert first.status == "failed"
        # A failure is never a cache hit for the next submission.
        third = state.submit("three", [spec])
        assert third.jobs[0].status == STATUS_QUEUED


class TestCancellation:
    def test_cancel_drops_queued_jobs(self, tmp_path):
        state = make_state(tmp_path)
        campaign = state.submit(
            "camp", [tiny_spec(load) for load in (0.05, 0.1, 0.2)]
        )
        cancelled = state.cancel_campaign(campaign)
        assert cancelled == 3
        assert campaign.status == "cancelled"
        assert all(j.status == STATUS_CANCELLED for j in campaign.jobs)
        assert state.scheduler.pending() == 0

    def test_cancel_promotes_follower_of_cancelled_primary(self, tmp_path):
        state = make_state(tmp_path)
        spec = tiny_spec()
        first = state.submit("one", [spec])
        second = state.submit("two", [spec])  # follower of first's job
        state.cancel_campaign(first)
        promoted = second.jobs[0]
        assert first.jobs[0].status == STATUS_CANCELLED
        assert promoted.status == STATUS_QUEUED
        assert promoted.coalesced_with is None
        assert state.scheduler.pending() == 1
        assert run_queued(state) == 1
        assert promoted.status == STATUS_OK

    def test_cancel_spares_running_jobs(self, tmp_path):
        state = make_state(tmp_path)
        campaign = state.submit(
            "camp", [tiny_spec(0.05), tiny_spec(0.1)]
        )
        running = state.scheduler.acquire()
        state.mark_running(running)
        cancelled = state.cancel_campaign(campaign)
        assert cancelled == 1  # only the still-queued one
        assert running.status == "running"
        # The running job still finishes, records and caches normally.
        state.finish(running, metrics={}, failure=None, elapsed_s=0.1)
        assert running.status == STATUS_OK
        assert state.store.get(running.key) is not None


class TestEventsAndQueries:
    def test_events_record_lifecycle(self, tmp_path):
        state = make_state(tmp_path)
        campaign = state.submit("camp", [tiny_spec()])
        run_queued(state)
        [event] = campaign.events
        assert event["event"] == "job"
        assert event["status"] == "ok"
        assert event["metrics"] == {"load": 0.05}
        assert event["seq"] == 0

    def test_stream_replays_then_ends(self, tmp_path):
        state = make_state(tmp_path)
        campaign = state.submit("camp", [tiny_spec()])
        run_queued(state)

        async def collect():
            return [e async for e in state.stream_events(campaign)]

        events = asyncio.run(collect())
        assert [e["event"] for e in events] == ["job", "end"]
        assert events[-1]["status"] == "done"
        assert events[-1]["counts"]["ok"] == 1

    def test_find_campaign_by_id_and_name(self, tmp_path):
        state = make_state(tmp_path)
        campaign = state.submit("my-sweep", [tiny_spec()])
        assert state.find_campaign(campaign.campaign_id) is campaign
        assert state.find_campaign("my-sweep") is campaign
        assert state.find_campaign("nope") is None

    def test_find_campaign_duplicate_name_returns_newest(self, tmp_path):
        """A reused name must resolve to the latest submission, not an
        arbitrary (historically: the oldest) match."""
        state = make_state(tmp_path)
        first = state.submit("nightly", [tiny_spec(0.05)])
        second = state.submit("nightly", [tiny_spec(0.1)])
        assert state.find_campaign("nightly") is second
        # Both remain addressable by id.
        assert state.find_campaign(first.campaign_id) is first

    def test_requeue_keeps_attempt_count_honest(self, tmp_path):
        """Worker-death requeue: attempts accumulate and reach both the
        finish event and the store record (not hardcoded to 1)."""
        state = make_state(tmp_path)
        campaign = state.submit("camp", [tiny_spec()])
        job = state.scheduler.acquire()
        state.mark_running(job)
        assert job.attempts == 1
        state.requeue(job, reason="worker died: test")
        assert job.status == STATUS_QUEUED
        assert state.scheduler.pending() == 1
        job = state.scheduler.acquire()
        state.mark_running(job)
        assert job.attempts == 2
        state.finish(job, metrics={}, failure=None, elapsed_s=0.1)
        assert job.attempts == 2
        assert state.store.get(job.key)["attempts"] == 2
        assert campaign.status == "done"

    def test_notify_tasks_strongly_referenced_until_done(self, tmp_path):
        """The loop only weakly references tasks; state must hold each
        notify task until it runs, or a GC pass can strand streams."""
        state = make_state(tmp_path)

        async def scenario():
            state.submit("camp", [tiny_spec()])
            # The notify task must be retained right after scheduling...
            assert len(state._notify_tasks) >= 1
            for task in list(state._notify_tasks):
                await task
            # ...and dropped once it has run (no unbounded growth).
            assert not state._notify_tasks

        asyncio.run(scenario())

    def test_list_jobs_filters(self, tmp_path):
        state = make_state(tmp_path)
        one = state.submit("one", [tiny_spec(0.05)], tenant="alice")
        state.submit("two", [tiny_spec(0.1)], tenant="bob")
        run_queued(state)
        assert len(state.list_jobs()) == 2
        assert len(state.list_jobs(tenant="alice")) == 1
        assert len(state.list_jobs(status="ok")) == 2
        assert len(
            state.list_jobs(campaign_id=one.campaign_id, tenant="bob")
        ) == 0

    def test_describe_counters(self, tmp_path):
        state = make_state(tmp_path)
        spec = tiny_spec()
        state.submit("a", [spec])
        state.submit("b", [spec])
        run_queued(state)
        state.submit("c", [spec])
        info = state.describe()
        assert info["executed"] == 1
        assert info["coalesced"] == 1
        assert info["cache_hits"] == 1
        assert info["campaigns"] == 3 and info["jobs"] == 3
        assert info["store"]["backend"] == "jsonl"
