"""JobServer over real HTTP: routes, streaming, errors, lifecycle.

Each test runs a live server on an ephemeral port (ServiceThread) with
the thread executor -- execute_job holds no global state, so thread
execution is bit-identical to the process pool and to serial runs.
"""

import json

import pytest

from repro.client import ServiceError, Session
from repro.client.transport import HttpTransport
from repro.orchestrate.spec import JobSpec, WorkloadRecipe
from repro.service.server import ServiceConfig, ServiceThread
from repro.sim.config import NetworkConfig


def tiny_spec(load=0.05, seed=0) -> JobSpec:
    return JobSpec(
        config=NetworkConfig(dims=(4, 4), protocol="wormhole", wave=None,
                             seed=seed),
        workload=WorkloadRecipe.make(
            "uniform", load=load, length=8, duration=150
        ),
        label=f"tiny@{load:g}#{seed}",
        max_cycles=20_000,
    )


@pytest.fixture
def service(tmp_path):
    config = ServiceConfig(
        port=0, store=f"sqlite:{tmp_path / 'store'}",
        workers=2, executor="thread",
    )
    with ServiceThread(config) as url:
        yield url


class TestRoutes:
    def test_health(self, service):
        health = Session(service).health()
        assert health["status"] == "ok"
        assert health["api_version"] == 1

    def test_store_stats_shape(self, service):
        stats = Session(service).store_stats()
        assert stats["store"]["backend"] == "sqlite"
        assert stats["executed"] == 0 and stats["pending"] == 0

    def test_submit_wait_results(self, service):
        session = Session(service)
        specs = [tiny_spec(load) for load in (0.05, 0.1)]
        campaign = session.submit_specs(specs, name="pair").wait(timeout=60)
        assert campaign.status == "done"
        assert campaign.counts["ok"] == 2
        results = campaign.results()
        assert len(results) == 2
        for row in results:
            assert row["status"] == "ok"
            assert row["metrics"]["delivered"] == row["metrics"]["injected"]
            assert row["spec"]["workload"]["kind"] == "uniform"

    def test_stream_ends_with_terminal_event(self, service):
        session = Session(service)
        campaign = session.submit_specs([tiny_spec()], name="solo")
        events = list(campaign.stream())
        assert events[-1].terminal
        assert events[-1].counts["ok"] + events[-1].counts["cached"] == 1
        job_events = [e for e in events if e.event == "job"]
        assert len(job_events) == 1
        assert job_events[0].metrics is not None

    def test_job_detail_carries_spec(self, service):
        session = Session(service)
        campaign = session.submit_specs([tiny_spec()], name="solo")
        campaign.wait(timeout=60)
        job = campaign.jobs.first()
        assert job is not None
        assert job.spec["config"]["protocol"] == "wormhole"

    def test_single_job_submission(self, service):
        transport = HttpTransport(service)
        spec = tiny_spec()
        out = transport.request(
            "POST", "/api/jobs", body={"spec": spec.to_dict()}
        )
        assert out["status"] in ("queued", "running")
        assert out["key"] == spec.key()

    def test_campaign_document_submission(self, service):
        session = Session(service)
        campaign = session.submit_campaign({
            "name": "doc",
            "defaults": {
                "dims": "4x4", "protocol": "wormhole",
                "workload": {"kind": "uniform", "load": 0.05,
                             "length": 8, "duration": 150},
                "max_cycles": 20_000,
            },
            "grid": {"seed": [0, 1]},
        }).wait(timeout=60)
        assert campaign.status == "done"
        assert campaign.data["jobs"] == 2

    def test_tenant_from_header(self, service):
        session = Session(service, tenant="alice")
        campaign = session.submit_specs([tiny_spec()], name="mine")
        assert campaign.data["tenant"] == "alice"

    def test_cancel_queued_campaign(self, tmp_path):
        # Zero-rate quota: nothing ever starts, so cancel sees it queued.
        config = ServiceConfig(
            port=0, store=f"sqlite:{tmp_path / 'store'}", workers=1,
            executor="thread", rate=0.000001, burst=1,
        )
        with ServiceThread(config) as url:
            session = Session(url)
            session.submit_specs([tiny_spec(0.01)], name="warm")  # takes token
            campaign = session.submit_specs(
                [tiny_spec(load) for load in (0.05, 0.1)], name="stuck"
            )
            out = campaign.cancel()
            assert out["cancelled"] == 2
            assert campaign.status == "cancelled"


class TestServerSideDedup:
    def test_second_campaign_is_pure_cache(self, service):
        session = Session(service)
        specs = [tiny_spec(load) for load in (0.05, 0.1)]
        session.submit_specs(specs, name="first").wait(timeout=60)
        again = session.submit_specs(specs, name="second").wait(timeout=60)
        assert again.counts["cached"] == 2
        stats = session.store_stats()
        assert stats["executed"] == 2 and stats["cache_hits"] == 2

    def test_dedup_crosses_tenants(self, service):
        spec = tiny_spec()
        Session(service, tenant="alice").submit_specs(
            [spec], name="a"
        ).wait(timeout=60)
        bob = Session(service, tenant="bob").submit_specs(
            [spec], name="b"
        ).wait(timeout=60)
        assert bob.counts["cached"] == 1


class TestErrors:
    def test_unknown_route_is_404(self, service):
        with pytest.raises(ServiceError) as err:
            HttpTransport(service).request("GET", "/api/nope")
        assert err.value.status == 404

    def test_unknown_campaign_is_404(self, service):
        with pytest.raises(ServiceError) as err:
            Session(service).get_campaign("c-9999")
        assert err.value.status == 404

    def test_empty_submission_is_400(self, service):
        with pytest.raises(ServiceError) as err:
            HttpTransport(service).request(
                "POST", "/api/campaigns", body={"specs": []}
            )
        assert err.value.status == 400

    def test_malformed_campaign_document_is_400(self, service):
        with pytest.raises(ServiceError) as err:
            Session(service).submit_campaign({"name": "empty"})
        assert err.value.status == 400

    def test_wrong_method_is_405(self, service):
        with pytest.raises(ServiceError) as err:
            HttpTransport(service).request("DELETE", "/api/campaigns")
        assert err.value.status == 405

    def test_invalid_json_body_is_400(self, service):
        # Hand-rolled request with a broken body, below the client layer.
        import http.client

        host, port = service.replace("http://", "").split(":")
        conn = http.client.HTTPConnection(host, int(port), timeout=30)
        try:
            conn.request("POST", "/api/campaigns", body=b"{nope",
                         headers={"Content-Type": "application/json"})
            resp = conn.getresponse()
            assert resp.status == 400
            assert "JSON" in json.loads(resp.read())["error"]
        finally:
            conn.close()


class TestRestartResume:
    def test_results_survive_server_restart(self, tmp_path):
        """A new server over the same store resumes via cache (gate 1)."""
        store = f"sqlite:{tmp_path / 'store'}"
        spec = tiny_spec()
        config = ServiceConfig(port=0, store=store, workers=1,
                               executor="thread")
        with ServiceThread(config) as url:
            Session(url).submit_specs([spec], name="one").wait(timeout=60)
        with ServiceThread(ServiceConfig(
            port=0, store=store, workers=1, executor="thread"
        )) as url:
            session = Session(url)
            again = session.submit_specs([spec], name="two").wait(timeout=60)
            assert again.counts["cached"] == 1
            assert session.store_stats()["executed"] == 0
