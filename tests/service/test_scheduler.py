"""FairScheduler: round-robin fairness, quotas, priority, cancellation.

Driven directly with a fake clock -- the scheduler is plain synchronous
data, so no event loop is involved.
"""

from repro.orchestrate.spec import JobSpec, WorkloadRecipe
from repro.service.model import SubmittedJob
from repro.service.scheduler import FairScheduler, TenantQuota
from repro.sim.config import NetworkConfig


def make_job(tenant="default", priority=0, load=0.05, seed=0) -> SubmittedJob:
    spec = JobSpec(
        config=NetworkConfig(dims=(4, 4), protocol="wormhole", wave=None,
                             seed=seed),
        workload=WorkloadRecipe.make(
            "uniform", load=load, length=8, duration=150
        ),
        label=f"{tenant}@{load:g}p{priority}",
    )
    return SubmittedJob(spec=spec, tenant=tenant, priority=priority)


def drain(sched: FairScheduler, now: float = 0.0) -> list[SubmittedJob]:
    out = []
    while True:
        job = sched.acquire(now)
        if job is None:
            return out
        out.append(job)


class TestRoundRobin:
    def test_tenants_alternate(self):
        sched = FairScheduler()
        for i in range(3):
            sched.add(make_job("big", load=0.01 * (i + 1)), now=0.0)
        sched.add(make_job("small", load=0.5), now=0.0)
        order = [job.tenant for job in drain(sched)]
        # big queued first but small gets its turn on the second slot.
        assert order == ["big", "small", "big", "big"]

    def test_million_job_tenant_cannot_starve_others(self):
        sched = FairScheduler()
        for i in range(50):
            sched.add(make_job("whale", load=0.001 * (i + 1)), now=0.0)
        sched.add(make_job("minnow"), now=0.0)
        served = [sched.acquire(0.0).tenant for _ in range(2)]
        assert "minnow" in served

    def test_empty_scheduler_returns_none(self):
        assert FairScheduler().acquire(0.0) is None
        assert FairScheduler().pending() == 0


class TestPriorityWithinTenant:
    def test_higher_priority_first_then_fifo(self):
        sched = FairScheduler()
        low1 = make_job(priority=0, load=0.01)
        low2 = make_job(priority=0, load=0.02)
        high = make_job(priority=5, load=0.03)
        for job in (low1, low2, high):
            sched.add(job, now=0.0)
        assert [j.priority for j in drain(sched)] == [5, 0, 0]

    def test_fifo_tiebreak_is_submission_order(self):
        sched = FairScheduler()
        jobs = [make_job(load=0.01 * (i + 1)) for i in range(4)]
        for job in jobs:
            sched.add(job, now=0.0)
        assert [j.spec.label for j in drain(sched)] == [
            j.spec.label for j in jobs
        ]

    def test_priority_does_not_cross_tenants(self):
        sched = FairScheduler()
        sched.add(make_job("a", priority=0, load=0.01), now=0.0)
        sched.add(make_job("b", priority=100, load=0.02), now=0.0)
        # Round-robin turn order beats cross-tenant priority: "a" was
        # queued first, so "a" runs first despite b's priority.
        assert sched.acquire(0.0).tenant == "a"


class TestQuotas:
    def test_max_inflight_gates_and_release_clears(self):
        sched = FairScheduler(default_quota=TenantQuota(max_inflight=1))
        sched.add(make_job(load=0.01), now=0.0)
        sched.add(make_job(load=0.02), now=0.0)
        first = sched.acquire(0.0)
        assert first is not None
        assert sched.acquire(0.0) is None  # at the cap
        assert sched.inflight() == 1
        sched.release(first.tenant)
        assert sched.acquire(0.0) is not None

    def test_rate_limit_with_fake_clock(self):
        sched = FairScheduler(
            default_quota=TenantQuota(rate=1.0, burst=1)
        )
        sched.add(make_job(load=0.01), now=0.0)
        sched.add(make_job(load=0.02), now=0.0)
        assert sched.acquire(0.0) is not None  # burst token
        assert sched.acquire(0.0) is None  # bucket empty
        wait = sched.next_ready_in(0.0)
        assert wait is not None and 0.0 < wait <= 1.0
        assert sched.acquire(0.0 + wait) is not None  # token refilled

    def test_burst_allows_back_to_back(self):
        sched = FairScheduler(
            default_quota=TenantQuota(rate=0.1, burst=3)
        )
        for i in range(4):
            sched.add(make_job(load=0.01 * (i + 1)), now=0.0)
        assert len(drain(sched, now=0.0)) == 3  # burst, then gated

    def test_per_tenant_quota_overrides_default(self):
        sched = FairScheduler(
            default_quota=TenantQuota(),
            quotas={"capped": TenantQuota(max_inflight=0)},
        )
        sched.add(make_job("capped", load=0.01), now=0.0)
        sched.add(make_job("free", load=0.02), now=0.0)
        jobs = drain(sched)
        assert [j.tenant for j in jobs] == ["free"]

    def test_next_ready_in_none_without_rate_gates(self):
        sched = FairScheduler(default_quota=TenantQuota(max_inflight=1))
        sched.add(make_job(load=0.01), now=0.0)
        sched.acquire(0.0)
        sched.add(make_job(load=0.02), now=0.0)
        # Gated by inflight, not rate: no token to wait for.
        assert sched.next_ready_in(0.0) is None


class TestDrop:
    def test_drop_removes_matching_queued_jobs(self):
        sched = FairScheduler()
        keep = make_job("a", load=0.01)
        gone1 = make_job("b", load=0.02)
        gone2 = make_job("b", load=0.03)
        for job in (keep, gone1, gone2):
            sched.add(job, now=0.0)
        dropped = sched.drop(lambda j: j.tenant == "b")
        assert {j.job_id for j in dropped} == {gone1.job_id, gone2.job_id}
        rest = drain(sched)
        assert [j.job_id for j in rest] == [keep.job_id]

    def test_drop_preserves_heap_order_of_rest(self):
        sched = FairScheduler()
        jobs = [make_job(priority=p, load=0.01 * (p + 1))
                for p in (0, 3, 1, 2)]
        for job in jobs:
            sched.add(job, now=0.0)
        sched.drop(lambda j: j.priority == 3)
        assert [j.priority for j in drain(sched)] == [2, 1, 0]
