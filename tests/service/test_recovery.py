"""Worker-failure recovery and restart-resume through a live server.

These run real ``ServiceThread`` servers (thread or process executor)
against real stores and journals -- no subprocess SIGKILLs (that is
tests/integration/test_service_chaos.py); "crash" here is
``stop(drain=False)``, which abandons running work and skips the drain
exactly as a dead process would.
"""

import time

from repro.client import Session
from repro.service.server import ServiceConfig, ServiceThread


def campaign_doc(jobs=3, duration=150):
    return {
        "name": "recovery",
        "defaults": {
            "topology": "mesh",
            "dims": "4x4",
            "max_cycles": 20_000,
            "workload": {"kind": "uniform", "load": 0.05,
                         "length": 8, "duration": duration},
        },
        "grid": {"seed": list(range(jobs))},
    }


def wait_until(predicate, timeout_s=30.0, what="condition"):
    deadline = time.monotonic() + timeout_s
    while time.monotonic() < deadline:
        if predicate():
            return
        time.sleep(0.02)
    raise AssertionError(f"timed out waiting for {what}")


class TestRestartResume:
    def test_unclean_stop_then_resume_completes_campaign(self, tmp_path):
        """Submit, die without drain, resume: zero lost, zero duplicated."""
        config = ServiceConfig(
            port=0, store=str(tmp_path / "store.jsonl"),
            workers=2, executor="thread",
        )
        first = ServiceThread(config)
        url = first.start()
        campaign_id = Session(url).submit_campaign(campaign_doc()).id
        first.stop(drain=False)  # simulated crash: no drain, no goodbye

        second = ServiceThread(
            ServiceConfig(
                port=0, store=str(tmp_path / "store.jsonl"),
                workers=2, executor="thread", resume=True,
            )
        )
        try:
            url = second.start()
            session = Session(url)
            campaign = session.get_campaign(campaign_id)
            assert campaign.name == "recovery"
            events = [e for e in campaign.stream() if e.event == "job"]
            assert len(events) == 3
            assert len({e.id for e in events}) == 3  # exactly once each
            campaign.refresh()
            assert campaign.counts["ok"] + campaign.counts["cached"] == 3
            assert campaign.counts["failed"] == 0
        finally:
            second.stop()

    def test_resume_skips_work_recorded_before_crash(self, tmp_path):
        """Jobs that finished pre-crash come back terminal, not re-run."""
        config = ServiceConfig(
            port=0, store=str(tmp_path / "store.jsonl"),
            workers=2, executor="thread",
        )
        first = ServiceThread(config)
        url = first.start()
        session = Session(url)
        campaign = session.submit_campaign(campaign_doc())
        campaign.wait(timeout=60)
        executed_first = session.store_stats()["executed"]
        assert executed_first == 3
        first.stop(drain=False)

        second = ServiceThread(
            ServiceConfig(
                port=0, store=str(tmp_path / "store.jsonl"),
                workers=2, executor="thread", resume=True,
            )
        )
        try:
            url = second.start()
            session = Session(url)
            back = session.get_campaign(campaign.id)
            assert back.status == "done"
            # Nothing to re-execute: the journal finishes restored every
            # job as terminal and the pump got no work.
            assert session.store_stats()["executed"] == 0
            assert session.store_stats()["restored"] == 0
        finally:
            second.stop()


class TestWorkerDeathRecovery:
    def test_broken_pool_rebuilds_and_retries(self, tmp_path):
        """SIGKILL a pool worker mid-job: the job re-admits and succeeds
        with attempts == 2, and the pool is rebuilt for the rest."""
        config = ServiceConfig(
            port=0, store=str(tmp_path / "store.jsonl"),
            workers=1, executor="process", retries=1,
        )
        server = ServiceThread(config)
        try:
            url = server.start()
            session = Session(url)
            campaign = session.submit_campaign(
                campaign_doc(jobs=2, duration=8000)
            )
            wait_until(
                lambda: bool(server.server._executor._processes),
                what="a pool worker to spawn",
            )
            wait_until(
                lambda: session.get_campaign(campaign.id)
                .counts.get("running", 0) > 0,
                what="a job to start running",
            )
            [victim] = list(server.server._executor._processes.values())
            victim.kill()

            campaign.wait(timeout=120)
            campaign.refresh()
            assert campaign.counts["failed"] == 0
            assert campaign.counts["ok"] == 2
            attempts = sorted(
                job.data["attempts"] for job in campaign.jobs
            )
            # The killed job ran twice; the other (queued at the kill)
            # ran once on the rebuilt pool.
            assert attempts == [1, 2]
        finally:
            server.stop()

    def test_crash_budget_exhaustion_records_honest_failure(self, tmp_path):
        """retries=0: a worker death is a terminal crash, not a hang."""
        config = ServiceConfig(
            port=0, store=str(tmp_path / "store.jsonl"),
            workers=1, executor="process", retries=0,
        )
        server = ServiceThread(config)
        try:
            url = server.start()
            session = Session(url)
            campaign = session.submit_campaign(
                campaign_doc(jobs=1, duration=8000)
            )
            wait_until(
                lambda: session.get_campaign(campaign.id)
                .counts.get("running", 0) > 0,
                what="the job to start running",
            )
            [victim] = list(server.server._executor._processes.values())
            victim.kill()
            campaign.wait(timeout=60)
            campaign.refresh()
            assert campaign.counts["failed"] == 1
            [job] = list(campaign.jobs)
            assert job.data["failure"]["kind"] == "crash"
            assert "worker died" in job.data["failure"]["message"]
        finally:
            server.stop()


class TestJobTimeout:
    def test_job_exceeding_timeout_fails_and_pool_recovers(self, tmp_path):
        config = ServiceConfig(
            port=0, store=str(tmp_path / "store.jsonl"),
            workers=1, executor="process", job_timeout_s=0.2,
        )
        server = ServiceThread(config)
        try:
            url = server.start()
            session = Session(url)
            # Job 1 cannot finish in 0.2s; it must time out...
            slow = session.submit_campaign(
                campaign_doc(jobs=1, duration=60_000)
            )
            slow.wait(timeout=60)
            slow.refresh()
            [job] = list(slow.jobs)
            assert job.status == "failed"
            assert job.data["failure"]["kind"] == "timeout"
        finally:
            server.stop()


class TestGracefulDrain:
    def test_stop_with_drain_finishes_running_jobs(self, tmp_path):
        config = ServiceConfig(
            port=0, store=str(tmp_path / "store.jsonl"),
            workers=2, executor="thread", drain_timeout_s=60.0,
        )
        server = ServiceThread(config)
        url = server.start()
        session = Session(url)
        campaign_id = session.submit_campaign(
            campaign_doc(jobs=2, duration=2000)
        ).id
        wait_until(
            lambda: session.get_campaign(campaign_id)
            .counts.get("running", 0) > 0,
            what="jobs to start running",
        )
        server.stop(drain=True)
        # The drained results reached the store even though the server
        # is gone: a resume has nothing left to do.
        resumed = ServiceThread(
            ServiceConfig(
                port=0, store=str(tmp_path / "store.jsonl"),
                workers=2, executor="thread", resume=True,
            )
        )
        try:
            url = resumed.start()
            back = Session(url).get_campaign(campaign_id)
            counts = back.counts
            # Whatever was running at stop() finished and recorded; only
            # never-started queued work (at most 2 - running) remains.
            assert counts["failed"] == 0
            assert counts["ok"] + counts["cached"] >= 1
        finally:
            resumed.stop()
