"""CampaignJournal + ServiceState.restore: the crash-recovery core.

Every scenario here is a *synchronous* reconstruction: write journal
ops through one ServiceState, build a fresh ServiceState over the same
files, call restore(), and assert the rebuilt world.  The subprocess
SIGKILL version of the same story lives in
tests/integration/test_service_chaos.py.
"""

import json

from repro.orchestrate import ResultStore
from repro.service.journal import CampaignJournal, default_journal_path
from repro.service.model import (
    STATUS_CACHED,
    STATUS_CANCELLED,
    STATUS_OK,
    STATUS_QUEUED,
)
from repro.service.scheduler import FairScheduler
from repro.service.state import ServiceState

from tests.service.test_state import run_queued, tiny_spec


def make_state(tmp_path) -> ServiceState:
    store = ResultStore(tmp_path / "results.jsonl")
    return ServiceState(
        store, FairScheduler(),
        journal=CampaignJournal(tmp_path / "journal.jsonl"),
    )


def reopen(tmp_path) -> ServiceState:
    """A fresh state over the same store + journal, as --resume builds."""
    return make_state(tmp_path)


class TestJournalFile:
    def test_append_load_round_trip(self, tmp_path):
        journal = CampaignJournal(tmp_path / "j.jsonl")
        ops = [{"op": "campaign", "n": i} for i in range(5)]
        for op in ops:
            journal.append(op)
        assert journal.load() == ops

    def test_load_missing_file_is_empty(self, tmp_path):
        assert CampaignJournal(tmp_path / "absent.jsonl").load() == []

    def test_torn_tail_is_skipped(self, tmp_path):
        journal = CampaignJournal(tmp_path / "j.jsonl")
        journal.append({"op": "campaign"})
        journal.append({"op": "job", "job_id": "j-1"})
        with open(journal.path, "ab") as fh:  # crash mid-write
            fh.write(b'{"op": "finish", "job_id": "j-1", "sta')
        assert [op["op"] for op in journal.load()] == ["campaign", "job"]

    def test_garbage_lines_are_skipped_not_fatal(self, tmp_path):
        journal = CampaignJournal(tmp_path / "j.jsonl")
        journal.append({"op": "campaign"})
        with open(journal.path, "ab") as fh:
            fh.write(b"not json at all\n")
            fh.write(b'["a", "list", "not", "a", "dict"]\n')
            fh.write(b'{"no_op_field": true}\n')
        journal.append({"op": "job"})
        assert [op["op"] for op in journal.load()] == ["campaign", "job"]

    def test_rewrite_is_atomic_and_complete(self, tmp_path):
        journal = CampaignJournal(tmp_path / "j.jsonl")
        for i in range(10):
            journal.append({"op": "run", "n": i})
        journal.rewrite([{"op": "campaign"}, {"op": "job"}])
        assert [op["op"] for op in journal.load()] == ["campaign", "job"]
        assert not list(tmp_path.glob("*.compact-tmp"))  # temp file gone

    def test_default_journal_path_for_jsonl_store(self, tmp_path):
        store = ResultStore(tmp_path / "results.jsonl")
        assert default_journal_path(store).name == "results.jsonl.journal"


class TestRestore:
    def test_queued_jobs_requeue_after_crash(self, tmp_path):
        state = make_state(tmp_path)
        state.submit("sweep", [tiny_spec(0.05), tiny_spec(0.1)])

        revived = reopen(tmp_path)
        report = revived.restore()
        assert report == {
            "campaigns": 1, "jobs": 2, "requeued": 2, "finished": 0,
        }
        campaign = revived.find_campaign("sweep")
        assert [j.status for j in campaign.jobs] == [STATUS_QUEUED] * 2
        assert revived.scheduler.pending() == 2
        # The restored queue executes exactly like a fresh submission.
        assert run_queued(revived) == 2
        assert campaign.status == "done"

    def test_finished_jobs_restore_terminal_with_metrics(self, tmp_path):
        state = make_state(tmp_path)
        campaign = state.submit("sweep", [tiny_spec()])
        run_queued(state)
        [event] = campaign.events

        revived = reopen(tmp_path)
        report = revived.restore()
        assert report["finished"] == 1 and report["requeued"] == 0
        [job] = revived.find_campaign("sweep").jobs
        assert job.status == STATUS_OK
        # Metrics come back from the *store* -- the journal never
        # carries them -- and the event log replays bit-identically.
        assert job.metrics == {"load": 0.05}
        assert revived.find_campaign("sweep").events == [event]

    def test_lost_finish_line_resolves_from_cache(self, tmp_path):
        """Crash after store.record but before the journal finish op."""
        state = make_state(tmp_path)
        state.submit("sweep", [tiny_spec()])
        job = state.scheduler.acquire()
        state.mark_running(job)
        # Simulate the torn window: the result lands in the store but
        # the finish op never reaches the journal.
        state.store.record(
            job.key, spec_dict=job.spec.to_dict(), status="ok",
            metrics={"recovered": True},
        )

        revived = reopen(tmp_path)
        revived.restore()
        [restored] = revived.find_campaign("sweep").jobs
        assert restored.status == STATUS_CACHED
        assert restored.metrics == {"recovered": True}
        assert revived.scheduler.pending() == 0  # no double execution

    def test_restored_ids_never_collide_with_new_ones(self, tmp_path):
        state = make_state(tmp_path)
        state.submit("one", [tiny_spec(0.05)])

        revived = reopen(tmp_path)
        revived.restore()
        restored_jobs = set(revived.jobs)
        restored_campaigns = set(revived.campaigns)
        fresh = revived.submit("two", [tiny_spec(0.1)])
        assert fresh.campaign_id not in restored_campaigns
        assert fresh.jobs[0].job_id not in restored_jobs
        assert len(revived.campaigns) == 2 and len(revived.jobs) == 2

    def test_cancelled_campaign_stays_cancelled(self, tmp_path):
        state = make_state(tmp_path)
        campaign = state.submit("doomed", [tiny_spec(0.05), tiny_spec(0.1)])
        state.cancel_campaign(campaign)

        revived = reopen(tmp_path)
        revived.restore()
        back = revived.find_campaign("doomed")
        assert back.status == "cancelled"
        assert all(j.status == STATUS_CANCELLED for j in back.jobs)
        assert revived.scheduler.pending() == 0

    def test_mid_cancel_crash_finishes_cancellation(self, tmp_path):
        """Cancel op journaled, but the per-job finish lines lost."""
        state = make_state(tmp_path)
        campaign = state.submit("doomed", [tiny_spec()])
        # Journal only the cancel marker, as if the crash hit right
        # after it was appended.
        state._journal({"op": "cancel", "campaign_id": campaign.campaign_id})

        revived = reopen(tmp_path)
        revived.restore()
        back = revived.find_campaign("doomed")
        assert all(j.status == STATUS_CANCELLED for j in back.jobs)

    def test_restore_compacts_the_journal(self, tmp_path):
        state = make_state(tmp_path)
        state.submit("sweep", [tiny_spec()])
        run_queued(state)
        # Bloat: ops a compaction must not preserve verbatim.
        for i in range(50):
            state._journal({"op": "run", "job_id": "j-bogus", "attempt": i})
        size_before = (tmp_path / "journal.jsonl").stat().st_size

        revived = reopen(tmp_path)
        revived.restore()
        size_after = (tmp_path / "journal.jsonl").stat().st_size
        assert size_after < size_before
        # Compaction is a fixpoint: a second resume is byte-identical.
        ops_once = (tmp_path / "journal.jsonl").read_text()
        again = reopen(tmp_path)
        again.restore()
        assert (tmp_path / "journal.jsonl").read_text() == ops_once

    def test_restore_survives_torn_journal_tail(self, tmp_path):
        state = make_state(tmp_path)
        state.submit("sweep", [tiny_spec(0.05), tiny_spec(0.1)])
        with open(tmp_path / "journal.jsonl", "ab") as fh:
            fh.write(b'{"op": "finish", "job_id": "j-000')  # torn line

        revived = reopen(tmp_path)
        report = revived.restore()
        assert report["requeued"] == 2

    def test_event_seqs_identical_across_restart(self, tmp_path):
        """The exactly-once contract behind client ?since= reconnects."""
        state = make_state(tmp_path)
        campaign = state.submit(
            "sweep", [tiny_spec(load) for load in (0.05, 0.1, 0.2)]
        )
        run_queued(state)
        before = [(e["seq"], e["id"], e["status"]) for e in campaign.events]

        revived = reopen(tmp_path)
        revived.restore()
        after_campaign = revived.find_campaign("sweep")
        after = [
            (e["seq"], e["id"], e["status"]) for e in after_campaign.events
        ]
        assert after == before

    def test_journal_lines_are_valid_json_objects(self, tmp_path):
        state = make_state(tmp_path)
        state.submit("sweep", [tiny_spec()])
        run_queued(state)
        with open(tmp_path / "journal.jsonl", encoding="utf-8") as fh:
            for line in fh:
                op = json.loads(line)
                assert isinstance(op, dict) and isinstance(op["op"], str)
