"""Tests for the wait-for graph and deadlock detector."""

import pytest

from repro.errors import DeadlockError
from repro.network.message import MessageFactory
from repro.network.network import Network
from repro.sim.config import NetworkConfig, WormholeConfig
from repro.sim.engine import Simulator
from repro.sim.rng import SimRandom
from repro.traffic import UniformPattern, uniform_workload
from repro.verify import build_wait_graph, find_deadlocked_worms
from repro.verify.deadlock import assert_no_deadlock, deadlocked_in_graph
from repro.verify.waitgraph import WaitEntry, WaitGraph


def run_under_load(config, load, duration=800, seed=5, check_every=25):
    net = Network(config)
    factory = MessageFactory()
    workload = uniform_workload(
        factory,
        UniformPattern(config.num_nodes),
        num_nodes=config.num_nodes,
        offered_load=load,
        length=24,
        duration=duration,
        rng=SimRandom(seed),
    )
    sim = Simulator(net, workload, deadlock_check_interval=check_every)
    return net, sim


class TestNoFalsePositives:
    """Deadlock-free routing must never trip the detector (Theorems 1-2)."""

    @pytest.mark.parametrize("load", [0.1, 0.4, 0.8])
    def test_dor_mesh_saturated(self, load):
        config = NetworkConfig(dims=(4, 4), protocol="wormhole", wave=None)
        net, sim = run_under_load(config, load)
        result = sim.run(60_000)  # raises DeadlockError on any cycle
        assert result.delivered == result.injected

    def test_dor_torus_saturated(self):
        config = NetworkConfig(
            topology="torus", dims=(4, 4), protocol="wormhole", wave=None
        )
        net, sim = run_under_load(config, 0.6)
        result = sim.run(60_000)
        assert result.delivered == result.injected

    def test_adaptive_mesh_saturated(self):
        config = NetworkConfig(
            dims=(4, 4),
            protocol="wormhole",
            wave=None,
            wormhole=WormholeConfig(vcs=3, routing="adaptive"),
        )
        net, sim = run_under_load(config, 0.8)
        result = sim.run(60_000)
        assert result.delivered == result.injected

    def test_clrp_under_pressure(self):
        config = NetworkConfig(dims=(4, 4), protocol="clrp")
        net, sim = run_under_load(config, 0.5)
        result = sim.run(60_000)
        assert result.delivered == result.injected


class TestDetectorFindsRealDeadlock:
    def test_constructed_cycle_detected(self):
        """Mis-route flits by hand into a circular wait and detect it."""
        from repro.wormhole.flit import make_worm

        config = NetworkConfig(
            dims=(2, 2),
            protocol="wormhole",
            wave=None,
            wormhole=WormholeConfig(vcs=1, buffer_depth=1),
        )
        net = Network(config)
        topo = net.topology
        # Build a 4-cycle of worms around the 2x2 mesh by direct buffer
        # manipulation: each worm's head occupies node i's input VC and is
        # routed to the channel whose downstream buffer the next worm fills.
        ring = [
            topo.node_at((0, 0)),
            topo.node_at((0, 1)),
            topo.node_at((1, 1)),
            topo.node_at((1, 0)),
        ]
        # Worm i: injected at ring[i], bound for ring[i+2].  Its header has
        # advanced to ring[i+1] and sits there UNROUTED, wanting the ring
        # channel ring[i+1] -> ring[i+2] -- which is owned by worm i+1,
        # whose body still streams from ring[i+1]'s injection queue.  Four
        # such worms close the classic channel-wait cycle.
        for i in range(4):
            node, nxt, dst = ring[i], ring[(i + 1) % 4], ring[(i + 2) % 4]
            router = net.routers[node]
            port = topo.minimal_ports(node, nxt)[0]
            worm = make_worm(100 + i, dst=dst, length=3)
            # Header: arrived at the next router over the ring channel.
            head = worm[0]
            head.arrival = 0
            back = topo.reverse_port(node, port)
            down = net.routers[nxt]
            down.inputs[back][0].buffer.append(head)
            down._active.add((back, 0))
            # Body: still in the injection queue at the source, routed into
            # the ring channel, which it therefore owns; no credit left
            # because the downstream buffer (depth 1) holds the header.
            for body in worm[1:]:
                body.arrival = 0
            inj = router.inputs[router.inject_port][0]
            inj.buffer.extend(worm[1:])
            inj.route = (port, 0)
            router._active.add((router.inject_port, 0))
            router.outputs[port][0].owner = (router.inject_port, 0)
            router.outputs[port][0].credits = 0
        stuck = find_deadlocked_worms(net)
        assert len(stuck) == 4, f"expected the 4-worm cycle, got {stuck}"
        with pytest.raises(DeadlockError):
            assert_no_deadlock(net)


class TestSelfBlockingResolvesMovable:
    """Regression: a worm whose blocker set contains its own msg_id is a
    transient self-wait (its downstream buffer holds its own flits) and
    must resolve towards movable, as the detector's soundness docstring
    promises.  The pre-fix fixpoint never seeded such a worm as movable
    and reported a spurious deadlock."""

    @staticmethod
    def graph_of(*entries):
        graph = WaitGraph()
        for e in entries:
            graph.add(e)
        return graph

    def test_pure_self_wait_not_deadlocked(self):
        graph = self.graph_of(
            WaitEntry(msg_id=7, node=0, in_port=0, in_vc=0, free=False,
                      blockers={7}, reason="no_credit"),
        )
        assert deadlocked_in_graph(graph) == []

    def test_mixed_self_and_stuck_blocker_not_deadlocked(self):
        # OR-wait: the self-alternative alone makes the worm movable even
        # when its other alternative points at a genuinely stuck worm.
        graph = self.graph_of(
            WaitEntry(msg_id=1, node=0, in_port=0, in_vc=0, free=False,
                      blockers={1, 2}, reason="va_wait"),
            WaitEntry(msg_id=2, node=1, in_port=0, in_vc=0, free=False,
                      blockers={3}, reason="no_credit"),
            WaitEntry(msg_id=3, node=2, in_port=0, in_vc=0, free=False,
                      blockers={2}, reason="no_credit"),
        )
        assert deadlocked_in_graph(graph) == [2, 3]

    def test_chain_behind_self_waiter_drains(self):
        # A worm blocked on a self-waiting worm is transitively movable.
        graph = self.graph_of(
            WaitEntry(msg_id=7, node=0, in_port=0, in_vc=0, free=False,
                      blockers={7}, reason="no_credit"),
            WaitEntry(msg_id=8, node=1, in_port=0, in_vc=0, free=False,
                      blockers={7}, reason="no_credit"),
        )
        assert deadlocked_in_graph(graph) == []

    def test_untracked_blocker_still_movable(self):
        # A blocker absent from the graph is mid-flight, hence progress.
        graph = self.graph_of(
            WaitEntry(msg_id=4, node=0, in_port=0, in_vc=0, free=False,
                      blockers={99}, reason="no_credit"),
        )
        assert deadlocked_in_graph(graph) == []

    def test_true_cycle_still_detected(self):
        graph = self.graph_of(
            WaitEntry(msg_id=1, node=0, in_port=0, in_vc=0, free=False,
                      blockers={2}, reason="no_credit"),
            WaitEntry(msg_id=2, node=1, in_port=0, in_vc=0, free=False,
                      blockers={1}, reason="no_credit"),
        )
        assert deadlocked_in_graph(graph) == [1, 2]


class TestWaitGraph:
    def test_empty_network_empty_graph(self):
        config = NetworkConfig(dims=(4, 4), protocol="wormhole", wave=None)
        net = Network(config)
        graph = build_wait_graph(net)
        assert graph.worms() == []

    def test_single_worm_reported_free(self):
        config = NetworkConfig(dims=(4, 4), protocol="wormhole", wave=None)
        net = Network(config)
        factory = MessageFactory()
        net.inject(factory.make(0, 5, 64, 0))
        net.run(3)
        graph = build_wait_graph(net)
        # One worm in flight, nothing blocking it.
        assert len(graph.worms()) == 1
        entry = list(graph.entries.values())[0]
        assert entry.free or not entry.blockers
