"""Tests for the structural invariant checks."""

import pytest

from repro.circuits.circuit import CircuitState
from repro.errors import ProtocolError
from repro.network.message import MessageFactory
from repro.network.network import Network
from repro.sim.config import NetworkConfig
from repro.sim.engine import Simulator
from repro.sim.rng import SimRandom
from repro.traffic import UniformPattern, uniform_workload
from repro.verify import check_all_invariants
from repro.verify.invariants import (
    check_ack_monotonicity,
    check_cache_coherence,
    check_channel_exclusivity,
    check_credit_sanity,
    check_mapping_consistency,
)


def loaded_net(protocol="clrp", load=0.2, seed=4):
    config = NetworkConfig(dims=(4, 4), protocol=protocol)
    net = Network(config)
    factory = MessageFactory()
    workload = uniform_workload(
        factory,
        UniformPattern(16),
        num_nodes=16,
        offered_load=load,
        length=24,
        duration=800,
        rng=SimRandom(seed),
    )
    return net, Simulator(net, workload)


class TestInvariantsHoldDuringRuns:
    def test_mid_run_checks_clean(self):
        net, sim = loaded_net()
        for _ in range(30):
            result = sim.run(50)
            check_all_invariants(net)
            if result.completed:
                break

    def test_post_run_checks_clean(self):
        net, sim = loaded_net(load=0.4)
        sim.run(60_000)
        check_all_invariants(net)


class TestInvariantsCatchCorruption:
    def test_orphan_reservation_detected(self):
        net, sim = loaded_net()
        sim.run(60_000)
        # Reserve some still-free channel for a circuit that doesn't exist.
        for node, unit in enumerate(net.plane.units):
            free = unit.free_channels(0)
            if free:
                unit.reserve(free[0], 0, circuit_id=9999)
                break
        with pytest.raises(ProtocolError):
            check_channel_exclusivity(net)

    def test_mapping_asymmetry_detected(self):
        net, sim = loaded_net()
        sim.run(60_000)
        # Out-of-range fake keys guarantee no legitimate mapping collides.
        net.plane.units[0].direct_map[(97, 0)] = (98, 0)  # no reverse entry
        with pytest.raises(ProtocolError):
            check_mapping_consistency(net)

    def test_missing_ack_bit_detected(self):
        net, sim = loaded_net()
        factory = MessageFactory()
        net.inject(factory.make(0, 5, 16, net.cycle))
        sim2 = Simulator(net, [])
        sim2.run(5000)
        circuit = net.plane.table.established()[0]
        node, port = circuit.path[0]
        net.plane.units[node]._reg(port, circuit.switch).ack_returned = False
        with pytest.raises(ProtocolError):
            check_ack_monotonicity(net)

    def test_cache_endpoint_mismatch_detected(self):
        net, sim = loaded_net()
        factory = MessageFactory()
        net.inject(factory.make(0, 5, 16, net.cycle))
        sim2 = Simulator(net, [])
        sim2.run(5000)
        engine = net.interfaces[0].engine
        entry = engine.cache.lookup(5)
        assert entry is not None
        entry.circuit.dst = 7  # corrupt the endpoint
        with pytest.raises(ProtocolError):
            check_cache_coherence(net)

    def test_credit_overflow_detected(self):
        net, sim = loaded_net(protocol="wormhole")
        sim.run(60_000)
        net.routers[0].outputs[0][0].credits = 99
        with pytest.raises(ProtocolError):
            check_credit_sanity(net)


class TestFaultIsolation:
    """check_fault_isolation (gated, not in ALL_CHECKS)."""

    def test_clean_without_faults(self):
        from repro.verify import check_fault_isolation

        net, sim = loaded_net()
        sim.run(5000)
        check_fault_isolation(net)  # no fault set attached: vacuous pass

    def test_detects_live_circuit_over_dead_link(self):
        from repro.topology import FaultSet, build_topology
        from repro.verify import check_fault_isolation

        topo = build_topology("mesh", (4, 4))
        faults = FaultSet(topo)
        net = Network(
            NetworkConfig(dims=(4, 4), protocol="clrp"), faults=faults
        )
        factory = MessageFactory()
        net.inject(factory.make(0, 5, 16, net.cycle))
        Simulator(net, []).run(5000)
        circuit = net.plane.table.established()[0]
        node, port = circuit.path[0]
        # Kill the link under the established circuit WITHOUT running the
        # protocol reaction: the checker must flag the stale reference.
        faults.fail_link(node, port)
        with pytest.raises(ProtocolError):
            check_fault_isolation(net)

    def test_teardown_latency_positive_for_wave(self):
        from repro.verify import teardown_latency

        net, _sim = loaded_net()
        assert teardown_latency(net) > 0
        worm_net = Network(NetworkConfig(dims=(4, 4), protocol="wormhole"))
        assert teardown_latency(worm_net) == 0
