"""Tests for the in-order delivery audit."""

import pytest

from repro.network.message import MessageFactory
from repro.network.network import Network
from repro.sim.config import NetworkConfig, SwitchingMode, WaveConfig
from repro.sim.engine import Simulator
from repro.sim.rng import SimRandom
from repro.sim.stats import MessageRecord
from repro.traffic import UniformPattern, uniform_workload
from repro.verify import check_in_order_delivery


def run(protocol="clrp", load=0.3, seed=3):
    config = NetworkConfig(
        dims=(4, 4),
        protocol=protocol,
        wave=None if protocol == "wormhole" else WaveConfig(),
    )
    net = Network(config)
    workload = uniform_workload(
        MessageFactory(),
        UniformPattern(16),
        num_nodes=16,
        offered_load=load,
        length=24,
        duration=1200,
        rng=SimRandom(seed),
    )
    Simulator(net, workload).run(100_000)
    return net


class TestAuditOnRealRuns:
    @pytest.mark.parametrize("protocol", ["wormhole", "clrp", "carp"])
    def test_circuit_guarantee_holds(self, protocol):
        net = run(protocol)
        report = check_in_order_delivery(net)
        assert report.pairs_checked > 0
        assert report.clean, report.circuit_violations

    def test_stressed_clrp_still_clean(self):
        net = run("clrp", load=0.7, seed=9)
        report = check_in_order_delivery(net)
        assert report.clean, report.circuit_violations

    def test_wormhole_vc_reordering_is_observable(self):
        """Multi-VC wormhole *can* reorder same-pair worms -- precisely
        why the paper calls out circuits' in-order guarantee as a
        feature."""
        net = run("wormhole", load=0.7, seed=9)
        report = check_in_order_delivery(net)
        assert report.clean  # no circuit messages at all
        assert report.wormhole_reorderings > 0


class TestAuditDetectsViolations:
    def _fake_net_stats(self):
        net = Network(NetworkConfig(dims=(4, 4), protocol="wormhole",
                                    wave=None))
        return net

    def test_constructed_violation_flagged(self):
        net = self._fake_net_stats()
        a = MessageRecord(msg_id=0, src=0, dst=5, length=8, created=0,
                          injected=0, delivered=100)
        b = MessageRecord(msg_id=1, src=0, dst=5, length=8, created=10,
                          injected=10, delivered=50)  # overtook a!
        a.mode = b.mode = SwitchingMode.CIRCUIT_HIT
        net.stats.new_message(a)
        net.stats.new_message(b)
        report = check_in_order_delivery(net)
        assert not report.clean
        assert report.circuit_violations == [(0, 5, 0, 1)]

    def test_mixed_mode_reordering_counted_not_flagged(self):
        net = self._fake_net_stats()
        a = MessageRecord(msg_id=0, src=0, dst=5, length=8, created=0,
                          injected=0, delivered=100)
        b = MessageRecord(msg_id=1, src=0, dst=5, length=8, created=10,
                          injected=10, delivered=50)
        a.mode = SwitchingMode.WORMHOLE_FALLBACK
        b.mode = SwitchingMode.CIRCUIT_HIT
        net.stats.new_message(a)
        net.stats.new_message(b)
        report = check_in_order_delivery(net)
        assert report.clean
        assert report.mixed_mode_reorderings == 1
