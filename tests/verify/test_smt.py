"""Tests for the exact SMT-style verifier and its certificates.

Covers the agreement property between the cycle-search analyzer and the
exact prover on every shipped config, the union-graph over-approximation
being resolved for adaptive configs, certificate round-trip and tamper
rejection, solver-free replay, and the z3 engine when installed (skipped
cleanly otherwise: the native engine decides the same constraints).
"""

import copy
import json

import pytest

from repro.cli import _shipped_verify_configs
from repro.errors import ConfigError
from repro.sim.config import NetworkConfig, WormholeConfig
from repro.verify.cdg import analyze_config, build_cdg, config_topology
from repro.verify.smt import (
    EscapeSubfunction,
    build_extended_cdg,
    build_union_cdg,
    certificate_slug,
    check_certificate,
    check_certificate_files,
    dump_certificate,
    have_z3,
    load_certificate,
    rejection_jobspecs,
    solve_ranks_native,
    subfunction_connected,
    verify_config,
)
from repro.wormhole.routing import AdaptiveRouting, make_routing


def _wormhole(topology, dims, routing="dor", vcs=2):
    return NetworkConfig(
        topology=topology, dims=dims, protocol="wormhole", wave=None,
        wormhole=WormholeConfig(vcs=vcs, routing=routing),
    )


def shipped_ids():
    return [c.describe() for c in _shipped_verify_configs()]


class TestBackendsAgreeOnShipped:
    """Satellite: cycle search and SMT agree on all 11 shipped configs."""

    @pytest.mark.parametrize(
        "config", _shipped_verify_configs(), ids=shipped_ids()
    )
    def test_native_agrees_with_search(self, config):
        search = analyze_config(config)
        smt = verify_config(config, engine="native")
        # Shipped configs are all deadlock-free; the exact prover may
        # only strengthen a search verdict (resolve over-approximation),
        # never weaken it.
        assert search.ok
        assert smt.deadlock_free and smt.conclusive
        assert check_certificate(smt.certificate).ok

    @pytest.mark.parametrize(
        "config", _shipped_verify_configs(), ids=shipped_ids()
    )
    @pytest.mark.skipif(not have_z3(), reason="z3-solver not installed")
    def test_z3_agrees_with_native(self, config):
        native = verify_config(config, engine="native")
        z3r = verify_config(config, engine="z3")
        assert native.deadlock_free == z3r.deadlock_free
        assert native.method == z3r.method
        assert z3r.engine.startswith("z3-")
        # z3's rank model differs numerically but must replay the same.
        assert check_certificate(z3r.certificate).ok

    def test_negative_case_dateline_free_torus(self):
        # The documented negative: torus DOR without dateline classes is
        # cyclic -- both backends must refute it, conclusively.
        config = _wormhole("torus", (4, 4))
        search = analyze_config(config, assume_classes=1)
        smt = verify_config(config, assume_classes=1, engine="native")
        assert not search.acyclic
        assert not smt.deadlock_free and smt.conclusive
        assert smt.method == "refuted"
        assert check_certificate(smt.certificate).ok

    @pytest.mark.skipif(not have_z3(), reason="z3-solver not installed")
    def test_z3_refutes_negative_case_too(self):
        config = _wormhole("torus", (4, 4))
        smt = verify_config(config, assume_classes=1, engine="z3")
        assert not smt.deadlock_free and smt.conclusive


class TestOverApproximationResolved:
    """Acceptance: search says cyclic, the exact prover certifies free."""

    def test_shipped_adaptive_union_graphs_are_cyclic(self):
        # The naive union graph (what a plain loop search operates on)
        # is cyclic for both shipped adaptive configs...
        for topology in ("mesh", "torus"):
            config = _wormhole(topology, (4, 4), routing="adaptive", vcs=3)
            topo = config_topology(config)
            routing = make_routing("adaptive", topo, 3)
            union = build_union_cdg(routing)
            assert solve_ranks_native(union) is None, topology
            # ...yet the escape-subfunction proof certifies freedom.
            smt = verify_config(config, engine="native")
            assert smt.deadlock_free and smt.union_cyclic
            assert smt.method == "escape"

    def test_ring_split_subrelation_beats_escape_search(self):
        # Dateline-free 4-ring with adaptive routing: the analyzer's own
        # extended escape-channel search finds a cycle (the DOR escape
        # chains plus links around the ring), but the ring-split
        # subfunction is connected with an acyclic extended graph, so
        # Duato's theorem proves the config deadlock-free -- the genuine
        # "search cyclic, SMT free" disagreement the audit must resolve.
        config = _wormhole("torus", (4,), routing="adaptive", vcs=3)
        search = analyze_config(config, assume_classes=1)
        assert not search.acyclic
        smt = verify_config(config, assume_classes=1, engine="native")
        assert smt.deadlock_free and smt.conclusive
        assert smt.method == "subrelation"
        assert smt.subfunction == "ring-split-dor"
        assert check_certificate(smt.certificate).ok

    def test_extended_escape_graph_matches_analyzer(self):
        # Coherence: build_extended_cdg with the escape subfunction must
        # reproduce the analyzer's extended escape CDG edge for edge.
        for topology, vcs in (("mesh", 3), ("torus", 3)):
            config = _wormhole(topology, (4, 4), routing="adaptive", vcs=vcs)
            topo = config_topology(config)
            routing = make_routing("adaptive", topo, vcs)
            assert isinstance(routing, AdaptiveRouting)
            sub = EscapeSubfunction(routing, routing.num_classes)
            ours = build_extended_cdg(routing, sub)
            theirs = build_cdg(topo, routing)
            assert {
                k: set(v) for k, v in ours.items()
            } == {k: set(v) for k, v in theirs.items()}

    def test_escape_subfunction_is_connected(self):
        config = _wormhole("torus", (4, 4), routing="adaptive", vcs=3)
        topo = config_topology(config)
        routing = make_routing("adaptive", topo, 3)
        sub = EscapeSubfunction(routing, routing.num_classes)
        assert subfunction_connected(routing, sub)


class TestCertificates:
    def test_roundtrip_via_file(self, tmp_path):
        config = _wormhole("mesh", (4, 4))
        smt = verify_config(config, engine="native")
        path = dump_certificate(
            smt.certificate, tmp_path / f"{certificate_slug(config)}.json"
        )
        cert = load_certificate(path)
        assert cert == smt.certificate
        assert check_certificate(cert).ok

    def test_tampered_rank_rejected(self):
        smt = verify_config(_wormhole("mesh", (4, 4)), engine="native")
        cert = copy.deepcopy(smt.certificate)
        key = next(iter(cert["ranks"]))
        cert["ranks"][key] += 1000
        check = check_certificate(cert)
        assert not check.ok
        assert any("!<" in e for e in check.errors)

    def test_tampered_graph_hash_rejected(self):
        smt = verify_config(_wormhole("mesh", (4, 4)), engine="native")
        cert = copy.deepcopy(smt.certificate)
        cert["graph"]["sha256"] = "0" * 64
        check = check_certificate(cert)
        assert not check.ok
        assert any("drift" in e for e in check.errors)

    def test_tampered_cycle_rejected(self):
        smt = verify_config(
            _wormhole("torus", (4, 4)), assume_classes=1, engine="native"
        )
        cert = copy.deepcopy(smt.certificate)
        cert["cycle"] = cert["cycle"][:-1]  # no longer a closed chain
        check = check_certificate(cert)
        assert not check.ok

    def test_unknown_format_rejected(self):
        assert not check_certificate({"format": "bogus/9"}).ok

    def test_batch_file_check(self, tmp_path):
        good = verify_config(_wormhole("mesh", (4, 4)), engine="native")
        dump_certificate(good.certificate, tmp_path / "good.json")
        (tmp_path / "bad.json").write_text("{not json", encoding="utf-8")
        results = dict(
            (p.name, c) for p, c in check_certificate_files(
                sorted(tmp_path.glob("*.json"))
            )
        )
        assert not results["bad.json"].ok
        assert results["good.json"].ok

    def test_committed_certificates_replay(self):
        # The repo ships one certificate per shipped config; all must
        # replay clean against the current code, without a solver.
        from pathlib import Path

        cert_dir = Path(__file__).parent.parent / "corpus" / "certificates"
        paths = sorted(cert_dir.glob("*.json"))
        assert len(paths) >= 11, "missing committed certificates"
        for path, check in check_certificate_files(paths):
            assert check.ok, (path.name, check.errors)

    def test_certificate_is_json_serialisable(self):
        smt = verify_config(
            _wormhole("torus", (4,), routing="adaptive", vcs=3),
            assume_classes=1, engine="native",
        )
        blob = json.dumps(smt.certificate)
        assert check_certificate(json.loads(blob)).ok


class TestEngineSelection:
    def test_unknown_engine_rejected(self):
        with pytest.raises(ConfigError, match="unknown SMT engine"):
            verify_config(_wormhole("mesh", (4, 4)), engine="cvc5")

    @pytest.mark.skipif(have_z3(), reason="only meaningful without z3")
    def test_z3_engine_degrades_with_clear_error(self):
        with pytest.raises(ConfigError, match="z3-solver is not installed"):
            verify_config(_wormhole("mesh", (4, 4)), engine="z3")

    @pytest.mark.skipif(have_z3(), reason="only meaningful without z3")
    def test_auto_engine_falls_back_to_native(self):
        smt = verify_config(_wormhole("mesh", (4, 4)), engine="auto")
        assert smt.engine == "native"
        assert smt.deadlock_free


class TestRejectionSeeding:
    def test_specs_are_replayable_jobspecs(self, tmp_path):
        from repro.orchestrate.spec import JobSpec
        from repro.verify.smt import dump_rejection_specs

        config = _wormhole("torus", (2, 2), vcs=1)
        specs = rejection_jobspecs(config)
        assert len(specs) == 3
        assert len({s.config.seed for s in specs}) == 3
        for spec in specs:
            assert spec.deadlock_check_interval > 0
            assert spec.invariants_every > 0
            # round-trips through the fuzzer's replay format
            assert JobSpec.from_dict(spec.to_dict()) == spec
        paths = dump_rejection_specs(config, tmp_path)
        assert len(paths) == 3
        loaded = [
            JobSpec.from_dict(json.loads(p.read_text(encoding="utf-8")))
            for p in paths
        ]
        assert sorted(s.key() for s in loaded) == sorted(
            s.key() for s in specs
        )
