"""Tests for the static channel-dependency-graph analyzer."""

import pytest

from repro.errors import ConfigError
from repro.sim.config import NetworkConfig, WormholeConfig
from repro.verify.cdg import (
    Channel,
    analyze_config,
    build_cdg,
    config_topology,
    find_cycle,
    format_report,
)


def shipped_configs():
    return [
        NetworkConfig(dims=(4, 4), protocol="wormhole", wave=None),
        NetworkConfig(topology="torus", dims=(4, 4), protocol="wormhole",
                      wave=None),
        NetworkConfig(topology="hypercube", dims=(2, 2, 2, 2),
                      protocol="wormhole", wave=None),
        NetworkConfig(dims=(4, 4), protocol="wormhole", wave=None,
                      wormhole=WormholeConfig(vcs=3, routing="adaptive")),
        NetworkConfig(topology="torus", dims=(4, 4), protocol="wormhole",
                      wave=None,
                      wormhole=WormholeConfig(vcs=3, routing="adaptive")),
        NetworkConfig(dims=(4, 4), protocol="clrp"),
        NetworkConfig(topology="torus", dims=(4, 4), protocol="carp"),
        NetworkConfig(topology="fullmesh", dims=(8,), protocol="clrp",
                      wormhole=WormholeConfig(vcs=1)),
        NetworkConfig(topology="min", dims=(2, 2, 2), protocol="wormhole",
                      wave=None, wormhole=WormholeConfig(vcs=1)),
    ]


class TestShippedConfigsAcyclic:
    @pytest.mark.parametrize(
        "config", shipped_configs(),
        ids=lambda c: f"{c.topology}-{c.protocol}-{c.wormhole.routing}",
    )
    def test_analyzer_proves_theorems_1_2(self, config):
        report = analyze_config(config)
        assert report.acyclic, report.cycle_chain(config_topology(config))
        assert report.ok
        assert report.num_channels > 0
        if config.topology != "fullmesh":
            assert report.num_deps > 0


class TestCyclicConfigFlagged:
    def test_torus_without_datelines_has_ring_cycle(self):
        config = NetworkConfig(topology="torus", dims=(4, 4),
                               protocol="wormhole", wave=None)
        report = analyze_config(config, assume_classes=1)
        assert not report.acyclic
        assert not report.ok
        # The chain closes: last channel repeats the first.
        assert report.cycle[0] == report.cycle[-1]
        # A torus ring cycle stays within one dimension and one class.
        topo = config_topology(config)
        dims = {topo.port_dimension(ch.port) for ch in report.cycle}
        assert len(dims) == 1
        assert {ch.vc_class for ch in report.cycle} == {0}
        # The offending chain is printable.
        assert "-->" in report.cycle_chain(topo)
        assert "CYCLE" in format_report(report, topo)

    def test_mesh_stays_acyclic_even_with_one_class(self):
        """Dally & Seitz: mesh DOR needs no VC classes at all."""
        config = NetworkConfig(dims=(4, 4), protocol="wormhole", wave=None)
        report = analyze_config(config, assume_classes=1)
        assert report.acyclic

    def test_bad_assume_classes_rejected(self):
        config = NetworkConfig(dims=(4, 4), protocol="wormhole", wave=None)
        with pytest.raises(ConfigError):
            analyze_config(config, assume_classes=0)

    def test_assume_classes_above_pinned_rejected_fullmesh(self):
        """Fullmesh pins a single VC class; pretending it has dateline
        classes would silently relabel the same graph -- the override
        must be rejected, not composed."""
        config = NetworkConfig(topology="fullmesh", dims=(8,),
                               protocol="wormhole", wave=None,
                               wormhole=WormholeConfig(vcs=2))
        with pytest.raises(ConfigError, match="pins"):
            analyze_config(config, assume_classes=2)

    def test_assume_classes_above_pinned_rejected_min(self):
        config = NetworkConfig(topology="min", dims=(2, 2, 2),
                               protocol="wormhole", wave=None,
                               wormhole=WormholeConfig(vcs=2))
        with pytest.raises(ConfigError, match="pins"):
            analyze_config(config, assume_classes=2)

    def test_reducing_classes_still_allowed(self):
        """The meaningful direction -- ignoring torus datelines to show
        the ring cycle -- must keep working."""
        config = NetworkConfig(topology="torus", dims=(4, 4),
                               protocol="wormhole", wave=None)
        report = analyze_config(config, assume_classes=1)
        assert not report.acyclic


class TestNewTopologies:
    def test_fullmesh_single_vc_has_empty_dependency_graph(self):
        """Diameter 1: every route is one hop, so no channel ever waits
        on another -- deadlock-free with a single virtual channel."""
        config = NetworkConfig(topology="fullmesh", dims=(8,),
                               protocol="wormhole", wave=None,
                               wormhole=WormholeConfig(vcs=1))
        report = analyze_config(config)
        assert report.acyclic and report.ok
        assert report.num_channels == 8 * 7
        assert report.num_deps == 0

    def test_min_single_vc_acyclic(self):
        """Butterfly routes only move forward through the stages, so the
        CDG is a DAG with one VC class -- even though the *physical* graph
        is one big cycle (last stage feeds the terminals feed stage 0)."""
        config = NetworkConfig(topology="min", dims=(2, 2, 2),
                               protocol="wormhole", wave=None,
                               wormhole=WormholeConfig(vcs=1))
        report = analyze_config(config)
        assert report.acyclic and report.ok
        assert report.num_deps > 0

    def test_min_cdg_only_covers_terminal_pairs(self):
        """Switch nodes never source worms; no CDG channel leaves a
        last-stage switch toward a terminal *and then* continues."""
        from repro.topology import build_topology
        from repro.wormhole.routing import make_routing

        topo = build_topology("min", (2, 2, 2))
        edges = build_cdg(topo, make_routing("dor", topo, 1))
        terminal_ingress = [
            ch for ch in edges
            if topo.neighbor(ch.node, ch.port) in set(topo.endpoints())
        ]
        # Routes end at terminals: ingress channels depend on nothing.
        assert terminal_ingress
        for ch in terminal_ingress:
            assert not edges[ch]


class TestGraphMatchesRuntime:
    def test_classes_mirror_runtime_dateline_logic(self):
        """The static walk must assign the same VC class the runtime
        router would: replay every DOR route with a real header flit and
        compare against the analyzer's edge set."""
        from repro.topology import build_topology
        from repro.wormhole.flit import Flit
        from repro.wormhole.routing import make_routing

        topo = build_topology("torus", (4, 3))
        routing = make_routing("dor", topo, 2)
        edges = build_cdg(topo, routing)
        vertices = set(edges)
        for ch, outs in edges.items():
            vertices.update(outs)
        for src in range(topo.num_nodes):
            for dst in range(topo.num_nodes):
                if src == dst:
                    continue
                head = Flit(0, 0, is_head=True, is_tail=True, dst=dst)
                node = src
                while node != dst:
                    [[(port, vcs)]] = routing.candidates(node, dst, head)
                    vc_class = vcs[0] % routing.num_classes
                    assert Channel(node, port, vc_class) in vertices, (
                        f"runtime channel missing from CDG at {node}->{dst}"
                    )
                    routing.note_hop(node, port, head)
                    node = topo.neighbor(node, port)

    def test_adaptive_extended_graph_superset_of_escape_dor(self):
        """Every escape (DOR) dependency must appear in the extended CDG;
        the adaptive closure only ever adds dependencies."""
        from repro.topology import build_topology
        from repro.wormhole.routing import make_routing

        topo = build_topology("torus", (3, 3))
        dor_edges = build_cdg(topo, make_routing("dor", topo, 2))
        ext_edges = build_cdg(topo, make_routing("adaptive", topo, 3))
        for ch, outs in dor_edges.items():
            assert outs <= ext_edges.get(ch, set()), ch

    def test_runtime_replay_check_runs_on_shipped_configs(self):
        """analyze_config now replays every runtime route against the
        analysed graph; the check must be present and passing whenever
        the analysis models the real discipline (assume_classes=None)."""
        for config in shipped_configs():
            report = analyze_config(config)
            replay = [c for c in report.checks if c.name == "runtime_replay"]
            assert len(replay) == 1, config.describe()
            assert replay[0].passed, replay[0].detail

    def test_runtime_replay_skipped_under_assume_classes(self):
        """Under a counterfactual class count the runtime would use
        channels the analysed graph omits -- replay must not run."""
        config = NetworkConfig(topology="torus", dims=(4, 4),
                               protocol="wormhole", wave=None)
        report = analyze_config(config, assume_classes=1)
        assert not any(
            c.name == "runtime_replay" for c in report.checks
        )

    def test_runtime_replay_flags_drifted_graph(self):
        """Drop one edge-set entry from the graph and the replay check
        must name the missing channel instead of passing."""
        from repro.topology import build_topology
        from repro.verify.cdg import runtime_replay_check
        from repro.wormhole.routing import make_routing

        topo = build_topology("torus", (4, 3))
        routing = make_routing("dor", topo, 2)
        edges = build_cdg(topo, routing)
        check = runtime_replay_check(topo, routing, edges)
        assert check.passed
        victim = next(iter(edges))
        pruned = {
            ch: outs - {victim}
            for ch, outs in edges.items() if ch != victim
        }
        check = runtime_replay_check(topo, routing, pruned)
        assert not check.passed
        assert "missing" in check.detail


class TestFindCycle:
    def c(self, node):
        return Channel(node, 0, 0)

    def test_empty_graph(self):
        assert find_cycle({}) == []

    def test_dag(self):
        edges = {self.c(0): {self.c(1)}, self.c(1): {self.c(2)},
                 self.c(2): set()}
        assert find_cycle(edges) == []

    def test_self_loop(self):
        # Structural degenerate case; _add_edge never creates these, but
        # the detector must not infinite-loop on one.
        edges = {self.c(0): {self.c(0)}}
        cycle = find_cycle(edges)
        assert cycle and cycle[0] == cycle[-1]

    def test_returns_closed_chain(self):
        edges = {self.c(0): {self.c(1)}, self.c(1): {self.c(2)},
                 self.c(2): {self.c(1)}}
        cycle = find_cycle(edges)
        assert cycle[0] == cycle[-1]
        assert {ch.node for ch in cycle} == {1, 2}
