"""Tests for the livelock monitors (Theorems 3 and 4, executable)."""

import pytest

from repro.errors import LivelockError
from repro.network.message import MessageFactory
from repro.network.network import Network
from repro.sim.config import NetworkConfig, WaveConfig
from repro.sim.engine import Simulator
from repro.sim.rng import SimRandom
from repro.traffic import UniformPattern, uniform_workload
from repro.verify import ProbeWorkMonitor, ProgressMonitor, max_message_age


class TestProbeWorkMonitor:
    def test_requires_wave_plane(self):
        net = Network(NetworkConfig(dims=(4, 4), protocol="wormhole", wave=None))
        with pytest.raises(LivelockError):
            ProbeWorkMonitor(net)

    def test_bound_never_tripped_under_contention(self):
        """MB-m probes always finish within the work bound (Theorem 3)."""
        config = NetworkConfig(
            dims=(4, 4),
            protocol="clrp",
            wave=WaveConfig(num_switches=1, misroute_budget=2,
                            circuit_cache_size=4),
        )
        net = Network(config)
        monitor = ProbeWorkMonitor(net)
        factory = MessageFactory()
        workload = uniform_workload(
            factory,
            UniformPattern(16),
            num_nodes=16,
            offered_load=0.3,
            length=16,
            duration=1500,
            rng=SimRandom(9),
        )
        sim = Simulator(net, workload, on_cycle=lambda n: monitor.check())
        result = sim.run(60_000)
        assert result.completed

    def test_monitor_raises_on_fabricated_overwork(self):
        config = NetworkConfig(dims=(4, 4), protocol="clrp")
        net = Network(config)
        monitor = ProbeWorkMonitor(net, max_waits=0)
        circuit, probe = net.plane.launch_probe(0, 5, 0, force=False, cycle=0)
        probe.hops = monitor.bound() + 1
        with pytest.raises(LivelockError):
            monitor.check()

    def test_exactly_at_bound_is_legal(self):
        """The MB-m bound is inclusive: work == bound() must not trip."""
        config = NetworkConfig(dims=(4, 4), protocol="clrp")
        net = Network(config)
        monitor = ProbeWorkMonitor(net, max_waits=0)
        circuit, probe = net.plane.launch_probe(0, 5, 0, force=False, cycle=0)
        probe.hops = monitor.bound()
        monitor.check()  # no raise
        probe.backtracks = 1  # work = bound() + 1
        with pytest.raises(LivelockError):
            monitor.check()


class TestMessageAge:
    def test_zero_when_all_delivered(self):
        config = NetworkConfig(dims=(4, 4), protocol="clrp")
        net = Network(config)
        factory = MessageFactory()
        net.inject(factory.make(0, 5, 16, 0))
        for _ in range(5000):
            net.step()
            if net.is_idle():
                break
        assert max_message_age(net) == 0

    def test_tracks_oldest_undelivered(self):
        config = NetworkConfig(dims=(4, 4), protocol="clrp")
        net = Network(config)
        factory = MessageFactory()
        net.inject(factory.make(0, 15, 4096, 0))
        net.run(10)
        assert max_message_age(net) == 10


class TestMessageAgeIdle:
    def test_zero_on_empty_idle_network(self):
        """A network that never saw a message has no age to report."""
        net = Network(NetworkConfig(dims=(4, 4), protocol="clrp"))
        assert net.is_idle()
        assert max_message_age(net) == 0
        net.run(50)  # stays zero no matter how long it idles
        assert max_message_age(net) == 0


class _StubNetwork:
    """Minimal surface the ProgressMonitor reads."""

    def __init__(self):
        self.work_counter = 0
        self.cycle = 0
        self.idle = False
        self.recovery = False

    def is_idle(self):
        return self.idle

    def recovery_pending(self):
        return self.recovery

    def outstanding_messages(self):
        return 1


class TestProgressMonitor:
    def test_classifications(self):
        net = _StubNetwork()
        mon = ProgressMonitor(net, stall_threshold=10)
        net.work_counter, net.cycle = 1, 1
        assert mon.observe() == "progressing"
        net.cycle = 2
        assert mon.observe() == "stalled"
        net.recovery, net.cycle = True, 3
        assert mon.observe() == "fault_recovery"
        net.recovery, net.idle, net.cycle = False, True, 4
        assert mon.observe() == "idle"

    def test_check_raises_once_threshold_reached(self):
        net = _StubNetwork()
        mon = ProgressMonitor(net, stall_threshold=5)
        for cycle in range(1, 5):
            net.cycle = cycle
            mon.check()  # stalled, but under the threshold
        net.cycle = 6
        with pytest.raises(LivelockError):
            mon.check()

    def test_fault_recovery_defers_livelock(self):
        net = _StubNetwork()
        net.recovery = True
        mon = ProgressMonitor(net, stall_threshold=5)
        for cycle in range(1, 50):
            net.cycle = cycle
            mon.check()  # recovery pending: anchor keeps moving
        net.recovery = False
        net.cycle = 54  # 5 cycles past the last recovery observation
        with pytest.raises(LivelockError):
            mon.check()


class TestEngineProgressTimeout:
    def test_livelock_error_when_network_wedged(self):
        """Fabricate a wedged state: a message queued at an engine entry
        that will never be served (its circuit object is gone and no probe
        is in flight), then expect the Simulator's monitor to fire."""
        config = NetworkConfig(dims=(4, 4), protocol="clrp")
        net = Network(config)
        factory = MessageFactory()
        msg = factory.make(0, 5, 16, 0)
        net.inject(msg)
        # Sabotage: rip the in-flight probe out of the plane so nothing
        # will ever complete the setup.
        net.plane.probes.clear()
        sim = Simulator(net, [], progress_timeout=200)
        with pytest.raises(LivelockError):
            sim.run(10_000)
