"""Tests for the livelock monitors (Theorems 3 and 4, executable)."""

import pytest

from repro.errors import LivelockError
from repro.network.message import MessageFactory
from repro.network.network import Network
from repro.sim.config import NetworkConfig, WaveConfig
from repro.sim.engine import Simulator
from repro.sim.rng import SimRandom
from repro.traffic import UniformPattern, uniform_workload
from repro.verify import ProbeWorkMonitor, max_message_age


class TestProbeWorkMonitor:
    def test_requires_wave_plane(self):
        net = Network(NetworkConfig(dims=(4, 4), protocol="wormhole", wave=None))
        with pytest.raises(LivelockError):
            ProbeWorkMonitor(net)

    def test_bound_never_tripped_under_contention(self):
        """MB-m probes always finish within the work bound (Theorem 3)."""
        config = NetworkConfig(
            dims=(4, 4),
            protocol="clrp",
            wave=WaveConfig(num_switches=1, misroute_budget=2,
                            circuit_cache_size=4),
        )
        net = Network(config)
        monitor = ProbeWorkMonitor(net)
        factory = MessageFactory()
        workload = uniform_workload(
            factory,
            UniformPattern(16),
            num_nodes=16,
            offered_load=0.3,
            length=16,
            duration=1500,
            rng=SimRandom(9),
        )
        sim = Simulator(net, workload, on_cycle=lambda n: monitor.check())
        result = sim.run(60_000)
        assert result.completed

    def test_monitor_raises_on_fabricated_overwork(self):
        config = NetworkConfig(dims=(4, 4), protocol="clrp")
        net = Network(config)
        monitor = ProbeWorkMonitor(net, max_waits=0)
        circuit, probe = net.plane.launch_probe(0, 5, 0, force=False, cycle=0)
        probe.hops = monitor.bound() + 1
        with pytest.raises(LivelockError):
            monitor.check()


class TestMessageAge:
    def test_zero_when_all_delivered(self):
        config = NetworkConfig(dims=(4, 4), protocol="clrp")
        net = Network(config)
        factory = MessageFactory()
        net.inject(factory.make(0, 5, 16, 0))
        for _ in range(5000):
            net.step()
            if net.is_idle():
                break
        assert max_message_age(net) == 0

    def test_tracks_oldest_undelivered(self):
        config = NetworkConfig(dims=(4, 4), protocol="clrp")
        net = Network(config)
        factory = MessageFactory()
        net.inject(factory.make(0, 15, 4096, 0))
        net.run(10)
        assert max_message_age(net) == 10


class TestEngineProgressTimeout:
    def test_livelock_error_when_network_wedged(self):
        """Fabricate a wedged state: a message queued at an engine entry
        that will never be served (its circuit object is gone and no probe
        is in flight), then expect the Simulator's monitor to fire."""
        config = NetworkConfig(dims=(4, 4), protocol="clrp")
        net = Network(config)
        factory = MessageFactory()
        msg = factory.make(0, 5, 16, 0)
        net.inject(msg)
        # Sabotage: rip the in-flight probe out of the plane so nothing
        # will ever complete the setup.
        net.plane.probes.clear()
        sim = Simulator(net, [], progress_timeout=200)
        with pytest.raises(LivelockError):
            sim.run(10_000)
