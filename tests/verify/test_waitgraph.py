"""Unit tests for the wait-for-graph construction itself."""

import pytest

from repro.network.message import MessageFactory
from repro.network.network import Network
from repro.sim.config import NetworkConfig, WormholeConfig
from repro.verify.waitgraph import build_wait_graph
from repro.wormhole.flit import make_worm


def make_net(vcs=1, buffer_depth=1, dims=(3,)):
    config = NetworkConfig(
        dims=dims,
        protocol="wormhole",
        wave=None,
        wormhole=WormholeConfig(vcs=vcs, buffer_depth=buffer_depth),
    )
    return Network(config), MessageFactory()


class TestForemostSite:
    def test_site_is_lowest_flit_index(self):
        """A worm strung over two routers is tracked at its header."""
        net, factory = make_net(buffer_depth=2)
        net.inject(factory.make(0, 2, 6, 0))
        net.run(3)  # header has advanced, body still following
        graph = build_wait_graph(net)
        [entry] = graph.entries.values()
        # The site holds the worm's smallest index currently buffered.
        router = net.routers[entry.node]
        head = router.inputs[entry.in_port][entry.in_vc].head()
        indices = [
            r.inputs[p][v].head().index
            for r in net.routers
            for (p, v) in r._active
            if r.inputs[p][v].head() is not None
            and r.inputs[p][v].head().msg_id == 0
        ]
        assert head.index == min(indices)


class TestNoCreditAttribution:
    def test_blocked_on_other_worm_names_it(self):
        """Worm B routed behind worm A reports A as its blocker."""
        net, factory = make_net(vcs=1, buffer_depth=1, dims=(4,))
        topo = net.topology
        # Worm A (id 100): header parked at node 2 input, UNROUTED is not
        # what we want -- make it routed but credit-starved further on by
        # filling node 3's buffer with its own flits? Simpler: construct
        # B waiting on A's buffer occupancy directly.
        worm_a = make_worm(100, dst=3, length=3)
        for f in worm_a:
            f.arrival = 0
        # A's header sits (unrouted) in node 2's input from node 1.
        port_1_to_2_pre = topo.minimal_ports(1, 2)[0]
        in_port_at_2 = topo.reverse_port(1, port_1_to_2_pre)
        net.routers[2].inputs[in_port_at_2][0].buffer.append(worm_a[0])
        net.routers[2]._active.add((in_port_at_2, 0))
        # B (id 101) at node 1, routed towards node 2 on the same VC,
        # zero credits because A's header fills the depth-1 buffer.
        worm_b = make_worm(101, dst=3, length=3)
        for f in worm_b:
            f.arrival = 0
        inj = net.routers[1].inputs[net.routers[1].inject_port][0]
        inj.buffer.extend(worm_b[:2])
        port_1_to_2 = topo.minimal_ports(1, 2)[0]
        inj.route = (port_1_to_2, 0)
        net.routers[1]._active.add((net.routers[1].inject_port, 0))
        net.routers[1].outputs[port_1_to_2][0].owner = (
            net.routers[1].inject_port, 0
        )
        net.routers[1].outputs[port_1_to_2][0].credits = 0
        graph = build_wait_graph(net)
        entry_b = graph.entries[101]
        assert not entry_b.free
        assert entry_b.blockers == {100}
        assert entry_b.reason == "no_credit"
        # A itself is an unrouted header with a free way forward.
        entry_a = graph.entries[100]
        assert entry_a.free

    def test_credit_available_reports_free(self):
        net, factory = make_net(buffer_depth=4)
        net.inject(factory.make(0, 2, 4, 0))
        net.run(2)
        graph = build_wait_graph(net)
        for entry in graph.entries.values():
            assert entry.free or entry.blockers


class TestEjectWait:
    def test_eject_contention_attributed(self):
        """Two worms racing for the single ejection path at one node."""
        net, factory = make_net(vcs=1, buffer_depth=2, dims=(3,))
        # With one VC there is a single eject VC; worm A delivering long
        # message holds it while worm B's header waits.
        net.inject(factory.make(0, 1, 12, 0))
        net.inject(factory.make(2, 1, 12, 0))
        saw_eject_wait = False
        for _ in range(60):
            net.step()
            graph = build_wait_graph(net)
            for entry in graph.entries.values():
                if entry.reason == "eject_wait" and entry.blockers:
                    saw_eject_wait = True
            if net.is_idle():
                break
        assert saw_eject_wait
        assert all(m.delivered > 0 for m in net.stats.messages.values())
