"""Tests for the protocol fuzzer: harness, corpus regressions, shrinking.

The two regression corpora under ``tests/corpus/`` are replayable
JobSpec JSON files produced by :func:`repro.verify.fuzz.dump_reproducer`.
Each one runs clean against the fixed code and fails when the historical
bug is re-introduced by a targeted mutation -- proving the fuzzer's
invariant harness would have caught both.
"""

from pathlib import Path
from types import SimpleNamespace

import json
import pytest

from repro.core.clrp import CLRPEngine
from repro.errors import ConfigError, DeadlockError, ProtocolError
from repro.network.network import Network
from repro.orchestrate.runner import execute_job
from repro.orchestrate.spec import JobSpec
from repro.sim.config import NetworkConfig
from repro.sim.stats import MessageRecord
from repro.verify import deadlock as deadlock_mod
from repro.verify.fuzz import (
    InvariantHarness,
    dump_reproducer,
    failure_signature,
    fuzz_campaign,
    generate_spec,
    load_spec,
    shrink,
)
from repro.verify.waitgraph import WaitEntry, WaitGraph, _owner_msg
from repro.wormhole.flit import EJECT_PORT

CORPUS = Path(__file__).resolve().parent.parent / "corpus"


# -- the historical bugs, as re-injectable mutations ----------------------


@pytest.fixture
def prefix_open_entry(monkeypatch):
    """Re-introduce the CLRP phase-budget bug: ``_open_entry`` launches
    the first probe of phase 1 but leaves ``switches_tried`` at zero, so
    the phase sweeps budget+1 switches before falling through."""
    orig = CLRPEngine._open_entry

    def buggy(self, msg, cycle):
        orig(self, msg, cycle)
        entry = self.cache.lookup(msg.dst)
        if entry is not None:
            entry.switches_tried = 0

    monkeypatch.setattr(CLRPEngine, "_open_entry", buggy)


def _rearmost_wait_graph(network):
    """A buggy wait-graph builder: evaluates each worm at its REARMOST
    site (highest flit index) and records self-edges verbatim.

    The real builder's foremost-site rule structurally precludes
    no-credit self-blocking, so the historical false positive cannot be
    triggered through it.  This inverted builder produces exactly the
    graphs that exposed the bug: at the rearmost site a worm routinely
    waits behind its *own* downstream flits.  A sound detector must
    resolve those self-edges towards movable.
    """
    graph = WaitGraph()
    sites = {}
    for router in network.routers:
        for port, vc in router._active:
            head = router.inputs[port][vc].head()
            if head is None:
                continue
            best = sites.get(head.msg_id)
            if best is None or head.index > best[0]:
                sites[head.msg_id] = (head.index, router.node, port, vc)
    for msg_id, (_idx, node, port, vc) in sites.items():
        router = network.routers[node]
        ivc = router.inputs[port][vc]
        head = ivc.head()
        entry = WaitEntry(msg_id=msg_id, node=node, in_port=port, in_vc=vc,
                          free=False)
        if ivc.route is not None:
            out_port, out_vc = ivc.route
            if out_port == EJECT_PORT:
                entry.free = True
                entry.reason = "ejecting"
            else:
                out = router.outputs[out_port][out_vc]
                if out.credits > 0:
                    entry.free = True
                    entry.reason = "has_credit"
                else:
                    down = router.downstream[out_port]
                    assert down is not None
                    d_router, d_port = down
                    blocker = _owner_msg(d_router, (d_port, out_vc))
                    entry.reason = "no_credit"
                    if blocker is not None:
                        entry.blockers.add(blocker)  # self-edges included
                    else:
                        entry.free = True
        else:
            # Header/transient cases are not what this mutation targets.
            entry.free = True
            entry.reason = "transient"
        graph.add(entry)
    return graph


def _prefix_fixpoint(graph):
    """The seed detector's fixpoint: resolves untracked blockers towards
    movable but NOT self-blockers -- the historical false positive."""
    movable = {
        e.msg_id for e in graph.entries.values() if e.free or not e.blockers
    }
    changed = True
    while changed:
        changed = False
        for entry in graph.entries.values():
            if entry.msg_id in movable:
                continue
            for blocker in entry.blockers:
                if blocker in movable or blocker not in graph.entries:
                    movable.add(entry.msg_id)
                    changed = True
                    break
    return sorted(set(graph.entries) - movable)


# -- invariant harness ----------------------------------------------------


class TestInvariantHarness:
    def test_bad_cadence_rejected(self):
        net = Network(NetworkConfig(dims=(2, 2), protocol="clrp"))
        with pytest.raises(ConfigError):
            InvariantHarness(net, every=0)

    def test_cadence_skips_off_cycles(self):
        net = Network(NetworkConfig(dims=(2, 2), protocol="clrp"))
        harness = InvariantHarness(net, every=3)
        for cycle in range(7):
            net.cycle = cycle
            harness.on_cycle(net)
        # Cycles 0, 3, 6 check; the rest return early.
        assert harness.checks_run == 3

    def test_probe_ledger_imbalance_caught(self):
        net = Network(NetworkConfig(dims=(2, 2), protocol="clrp"))
        harness = InvariantHarness(net, every=1)
        harness.on_cycle(net)  # idle net passes
        net.stats.bump("probe.launched")  # counter with no probe in flight
        with pytest.raises(ProtocolError, match="probe ledger"):
            harness.on_cycle(net)

    def test_finish_flags_silently_vanished_message(self):
        net = Network(NetworkConfig(dims=(2, 2), protocol="clrp"))
        harness = InvariantHarness(net, every=1)
        net.stats.new_message(
            MessageRecord(msg_id=5, src=0, dst=3, length=4, created=0)
        )
        done = SimpleNamespace(completed=True)
        with pytest.raises(ProtocolError, match="neither delivered"):
            harness.finish(done)
        # Once delivered, the same audit passes.
        net.stats.mark_delivered(5, 40)
        harness.finish(done)

    def test_finish_skips_audit_on_incomplete_run(self):
        net = Network(NetworkConfig(dims=(2, 2), protocol="clrp"))
        harness = InvariantHarness(net, every=1)
        net.stats.new_message(
            MessageRecord(msg_id=5, src=0, dst=3, length=4, created=0)
        )
        # A budget-expired run still has messages in flight; that is the
        # simulator's livelock monitor's concern, not the harness's.
        harness.finish(SimpleNamespace(completed=False))


# -- regression corpus ----------------------------------------------------


class TestClrpPhaseBudgetCorpus:
    SPEC = CORPUS / "clrp_phase_budget.json"

    def test_corpus_spec_runs_clean_post_fix(self):
        assert failure_signature(load_spec(self.SPEC)) is None

    def test_harness_catches_reintroduced_bug(self, prefix_open_entry):
        spec = load_spec(self.SPEC)
        with pytest.raises(ProtocolError, match="switches"):
            execute_job(spec)


class TestDeadlockSelfWaitCorpus:
    SPEC = CORPUS / "deadlock_selfwait.json"
    GRAPHS = CORPUS / "deadlock_selfwait_graphs.json"

    def test_corpus_spec_runs_clean_post_fix(self):
        assert failure_signature(load_spec(self.SPEC)) is None

    def test_prefix_detector_reports_spurious_deadlock(self, monkeypatch):
        monkeypatch.setattr(
            deadlock_mod, "build_wait_graph", _rearmost_wait_graph
        )
        monkeypatch.setattr(
            deadlock_mod, "deadlocked_in_graph", _prefix_fixpoint
        )
        with pytest.raises(DeadlockError):
            execute_job(load_spec(self.SPEC))

    def test_fixed_detector_ignores_self_edges(self, monkeypatch):
        # Same buggy graphs, fixed fixpoint: the run drains clean, so the
        # detector's soundness no longer depends on the builder having
        # filtered self-edges out.
        monkeypatch.setattr(
            deadlock_mod, "build_wait_graph", _rearmost_wait_graph
        )
        assert failure_signature(load_spec(self.SPEC)) is None

    def test_graph_level_corpus(self):
        data = json.loads(self.GRAPHS.read_text(encoding="utf-8"))
        for case in data["cases"]:
            graph = WaitGraph()
            for raw in case["entries"]:
                graph.add(WaitEntry(
                    msg_id=raw["msg_id"], node=0, in_port=0, in_vc=0,
                    free=raw["free"], blockers=set(raw["blockers"]),
                ))
            got = deadlock_mod.deadlocked_in_graph(graph)
            assert got == case["deadlocked"], case["name"]


# -- shrinking ------------------------------------------------------------


class TestShrinking:
    def test_shrinks_failure_to_replayable_reproducer(
        self, prefix_open_entry, tmp_path
    ):
        # A deliberately oversized CLRP scenario; with the phase-budget
        # bug re-introduced every cache miss trips the harness.
        spec = load_spec(CORPUS / "clrp_phase_budget.json")
        import dataclasses

        from repro.orchestrate.spec import WorkloadRecipe

        big = dataclasses.replace(
            spec,
            config=dataclasses.replace(spec.config, dims=(4, 4)),
            workload=WorkloadRecipe.make(
                "uniform", pattern="hotspot", load=0.4, length=24,
                duration=600,
            ),
        )
        signature = failure_signature(big)
        assert signature == "ProtocolError"

        result = shrink(big, signature, max_attempts=24)
        assert result.steps > 0
        assert result.signature == "ProtocolError"
        small = result.spec.workload.as_dict()
        orig = big.workload.as_dict()
        # Strictly simpler along at least one axis.
        assert (
            small["duration"] < orig["duration"]
            or small["load"] < orig["load"]
            or small["length"] < orig["length"]
            or result.spec.config.dims != big.config.dims
        )
        # The reproducer replays from JSON with the same signature.
        from repro.verify.fuzz import FuzzFailure

        failure = FuzzFailure(
            index=0, signature=signature, message="", spec=big,
            shrunk=result,
        )
        path = dump_reproducer(failure, tmp_path / "repro.json")
        loaded = load_spec(path)
        assert loaded == result.spec
        assert failure_signature(loaded) == "ProtocolError"

    def test_shrink_respects_attempt_budget(self, prefix_open_entry):
        spec = load_spec(CORPUS / "clrp_phase_budget.json")
        result = shrink(spec, "ProtocolError", max_attempts=3)
        assert result.attempts <= 3


class TestShrinkValidity:
    """Regression: every transitive shrink candidate must be a config
    the topology layer actually accepts.

    The min branch in particular must preserve k-ary n-fly validity
    (k >= 2, n >= 1, terminals = k**n) -- an invalid candidate used to
    raise inside the candidate *generator*, escaping shrink()'s guard
    and losing the original reproducer.
    """

    def _walk_dims_closure(self, spec, seen, problems, depth=0):
        from repro.errors import ReproError
        from repro.topology import build_topology
        from repro.verify.fuzz import _shrink_candidates

        sig = (spec.config.topology, spec.config.dims,
               spec.config.wormhole.vcs, spec.config.wormhole.routing)
        if sig in seen or depth > 8:
            return
        seen.add(sig)
        try:
            candidates = list(_shrink_candidates(spec))
        except ReproError as exc:
            problems.append(("generator-escape", sig, str(exc)))
            return
        for cand in candidates:
            try:
                build_topology(cand.config.topology, cand.config.dims)
                cand.key()
            except ReproError as exc:
                problems.append(("invalid-candidate", sig,
                                 cand.config.dims, str(exc)))
                continue
            if cand.config.dims != spec.config.dims:
                self._walk_dims_closure(cand, seen, problems, depth + 1)

    def test_all_pool_topologies_shrink_to_valid_configs(self):
        from repro.verify.fuzz import _TOPOLOGIES

        import dataclasses

        from repro.sim.config import WormholeConfig

        seen, problems = set(), []
        base = generate_spec(0, master_seed=1)
        for topology, dims in _TOPOLOGIES:
            for routing in ("dor", "adaptive"):
                classes = 2 if topology == "torus" else 1
                vcs = classes + 1 if routing == "adaptive" else classes
                spec = dataclasses.replace(
                    base,
                    config=dataclasses.replace(
                        base.config, topology=topology, dims=dims,
                        wormhole=WormholeConfig(vcs=vcs, routing=routing),
                    ),
                )
                self._walk_dims_closure(spec, seen, problems)
        assert not problems, problems[:5]

    def test_min_shrink_chain_stays_kary_nfly(self):
        """Walk the min branch explicitly: every dims it can ever emit
        must be uniform with radix >= 2 and at least one stage."""
        import dataclasses

        from repro.sim.config import WormholeConfig
        from repro.verify.fuzz import _shrink_candidates

        base = generate_spec(0, master_seed=1)
        spec = dataclasses.replace(
            base,
            config=dataclasses.replace(
                base.config, topology="min", dims=(3, 3, 3),
                wormhole=WormholeConfig(vcs=1, routing="dor"),
            ),
        )
        frontier = [spec]
        seen = set()
        while frontier:
            current = frontier.pop()
            if current.config.dims in seen:
                continue
            seen.add(current.config.dims)
            for cand in _shrink_candidates(current):
                if cand.config.topology != "min":
                    continue
                dims = cand.config.dims
                assert len(set(dims)) == 1 and dims[0] >= 2 and len(dims) >= 1
                if dims != current.config.dims:
                    frontier.append(cand)
        # The chain really explored smaller flies, not just the seed.
        assert len(seen) > 2

    def test_invalid_candidates_filtered_not_raised(self):
        """A shrink rule that produces an invalid config must yield
        nothing rather than blow up the generator."""
        import dataclasses

        from repro.sim.config import WormholeConfig
        from repro.verify.fuzz import _with_config

        base = generate_spec(0, master_seed=1)
        spec = dataclasses.replace(
            base,
            config=dataclasses.replace(
                base.config, topology="min", dims=(2, 2),
                wormhole=WormholeConfig(vcs=1, routing="dor"),
            ),
        )
        # Non-uniform dims on a min: NetworkConfig rejects -> None,
        # never an exception out of candidate construction.
        assert _with_config(spec, dims=(2, 3)) is None
        # Radix below 2 is likewise invalid anywhere.
        assert _with_config(spec, dims=(1, 1)) is None


# -- generation and campaign ----------------------------------------------


class TestGeneration:
    def test_specs_deterministic_across_calls(self):
        for index in range(12):
            a = generate_spec(index, master_seed=7)
            b = generate_spec(index, master_seed=7)
            assert a == b
            assert a.key() == b.key()

    def test_specs_vary_with_index_and_seed(self):
        keys = {generate_spec(i, master_seed=7).key() for i in range(12)}
        assert len(keys) == 12
        assert generate_spec(0, 7).key() != generate_spec(0, 8).key()

    def test_specs_valid_by_construction(self):
        # Every generated spec must at least survive config validation
        # and workload building (the key() round-trip exercises both
        # serialisation paths).
        for index in range(24):
            spec = generate_spec(index, master_seed=3)
            assert spec.invariants_every >= 1
            JobSpec.from_dict(spec.to_dict())


class TestCampaign:
    def test_smoke_campaign_passes_and_caches(self, tmp_path):
        from repro.orchestrate.store import ResultStore

        store = ResultStore(tmp_path / "fuzz.jsonl")
        report = fuzz_campaign(2, master_seed=0, store=store)
        assert report.ok
        assert report.passed == 2
        rerun = fuzz_campaign(2, master_seed=0, store=store)
        assert rerun.ok
        assert rerun.from_cache == 2

    def test_campaign_surfaces_reintroduced_bug(self, prefix_open_entry):
        # Find a CLRP scenario in the first few indices (protocol weights
        # make one near-certain); it must fail under the mutation with
        # the phase-budget signature.  Shrinking is exercised separately
        # (TestShrinking) -- disabled here to keep the campaign fast.
        report = fuzz_campaign(6, master_seed=0, shrink_failures=False)
        clrp_failures = [
            f for f in report.failures if f.signature == "ProtocolError"
        ]
        assert clrp_failures, "expected the mutation to surface"
        failure = clrp_failures[0]
        assert failure.shrunk is None
        assert failure.reproducer == failure.spec

    def test_bad_budget_rejected(self):
        with pytest.raises(ConfigError):
            fuzz_campaign(0)


class TestSpecKeyStability:
    def test_disabled_harness_field_omitted_from_dict(self):
        spec = generate_spec(0, master_seed=0)
        import dataclasses

        plain = dataclasses.replace(spec, invariants_every=0)
        data = plain.to_dict()
        assert "invariants_every" not in data
        assert JobSpec.from_dict(data) == plain

    def test_enabled_harness_field_round_trips_and_keys(self):
        spec = generate_spec(0, master_seed=0)
        assert spec.invariants_every >= 1
        data = spec.to_dict()
        assert data["invariants_every"] == spec.invariants_every
        assert JobSpec.from_dict(data) == spec
        import dataclasses

        other = dataclasses.replace(
            spec, invariants_every=spec.invariants_every + 1
        )
        assert other.key() != spec.key()
