"""Tests for the command-line front-end."""

import pytest

from repro.analysis.experiments import run_experiment
from repro.cli import build_config, build_items, main, make_parser, parse_dims
from repro.errors import ConfigError


class TestParseDims:
    def test_basic(self):
        assert parse_dims("8x8") == (8, 8)
        assert parse_dims("2x2x2") == (2, 2, 2)
        assert parse_dims("4X4") == (4, 4)

    def test_bad(self):
        with pytest.raises(ConfigError):
            parse_dims("8by8")


class TestRun:
    def test_run_clrp(self, capsys):
        code = main([
            "run", "--dims", "4x4", "--protocol", "clrp",
            "--load", "0.1", "--length", "16", "--duration", "400",
        ])
        out = capsys.readouterr().out
        assert code == 0
        assert "4x4 mesh" in out
        assert "delivered" in out
        assert "mean" in out

    def test_run_wormhole_baseline(self, capsys):
        code = main([
            "run", "--dims", "4x4", "--protocol", "wormhole",
            "--load", "0.1", "--length", "16", "--duration", "400",
        ])
        assert code == 0
        assert "wormhole" in capsys.readouterr().out

    def test_run_carp_compiles(self, capsys):
        code = main([
            "run", "--dims", "4x4", "--protocol", "carp",
            "--pattern", "neighbor",
            "--load", "0.15", "--length", "16", "--duration", "600",
        ])
        assert code == 0

    def test_run_torus_needs_vcs(self, capsys):
        code = main([
            "run", "--topology", "torus", "--dims", "4x4", "--vcs", "1",
            "--protocol", "wormhole",
        ])
        assert code == 2
        assert "configuration error" in capsys.readouterr().err

    def test_run_with_monitors(self, capsys):
        code = main([
            "run", "--dims", "4x4", "--load", "0.1", "--length", "8",
            "--duration", "300", "--deadlock-check", "50",
            "--progress-timeout", "10000",
        ])
        assert code == 0


class TestSweep:
    def test_sweep_two_points(self, capsys):
        code = main([
            "sweep", "--dims", "4x4", "--protocol", "wormhole",
            "--loads", "0.05,0.1", "--length", "16", "--duration", "500",
        ])
        out = capsys.readouterr().out
        assert code == 0
        assert "offered load" in out
        assert out.count("load 0.0") >= 1

    def test_sweep_parallel_jobs_flag(self, capsys):
        code = main([
            "sweep", "--dims", "4x4", "--protocol", "wormhole",
            "--loads", "0.05,0.1", "--length", "16", "--duration", "400",
            "--jobs", "2",
        ])
        out = capsys.readouterr().out
        assert code == 0
        assert "offered load" in out

    def test_sweep_serial_parallel_identical_output(self, capsys):
        argv = [
            "sweep", "--dims", "4x4", "--protocol", "clrp",
            "--loads", "0.05,0.1", "--length", "16", "--duration", "400",
        ]
        assert main(argv) == 0
        serial_out = capsys.readouterr().out
        assert main(argv + ["--jobs", "2"]) == 0
        parallel_out = capsys.readouterr().out
        assert parallel_out == serial_out

    def test_sweep_throughput_uses_run_experiment_window(self, capsys):
        """The reported throughput must follow run_experiment methodology.

        The old window cut at ``duration``: messages still draining after
        the injection window were silently excluded from accepted
        throughput.  The aligned window runs from ``duration // 5`` to the
        last delivery, exactly like ``run_experiment(warmup=duration//5)``.
        """
        argv = [
            "sweep", "--dims", "4x4", "--protocol", "wormhole",
            "--loads", "0.3", "--length", "32", "--duration", "300",
        ]
        args = make_parser().parse_args(argv)
        config = build_config(args)
        items = build_items(config, args, 0.3)
        expected = run_experiment(
            config, items, max_cycles=args.max_cycles,
            warmup=args.duration // 5,
        )
        # Sanity: the run must actually drain past the injection window,
        # otherwise this test wouldn't exercise the fix.
        last_delivery = max(
            m.delivered for m in expected.sim.stats.delivered_records()
        )
        assert last_delivery > args.duration
        assert main(argv) == 0
        out = capsys.readouterr().out
        assert f"load 0.3: throughput {expected.throughput:.3f}" in out


class TestCompare:
    def test_compare_all_protocols(self, capsys):
        code = main([
            "compare", "--dims", "4x4", "--load", "0.1",
            "--length", "16", "--duration", "400",
        ])
        out = capsys.readouterr().out
        assert code == 0
        for name in ("wormhole", "clrp", "carp"):
            assert name in out


class TestVariantsFlag:
    def test_clrp_variant_accepted(self, capsys):
        code = main([
            "run", "--dims", "4x4", "--clrp-variant", "immediate_force",
            "--load", "0.1", "--length", "16", "--duration", "300",
        ])
        assert code == 0


class TestHeatmap:
    def test_heatmap_renders(self, capsys):
        code = main([
            "heatmap", "--dims", "4x4", "--load", "0.2",
            "--length", "16", "--duration", "500",
        ])
        out = capsys.readouterr().out
        assert code == 0
        assert "link load" in out
        assert "deliveries per node" in out
        assert "o" in out


class TestFaultFlag:
    def test_run_with_faults(self, capsys):
        code = main([
            "run", "--dims", "4x4", "--protocol", "clrp",
            "--load", "0.05", "--length", "16", "--duration", "300",
            "--fault-fraction", "0.1",
        ])
        # Some messages may be dropped (undeliverable via S0): both exit
        # codes are legitimate; what matters is it runs and reports.
        assert code in (0, 1)
        assert "machine" in capsys.readouterr().out


class TestDynamicFaultFlags:
    def test_run_with_mtbf(self, capsys):
        code = main([
            "run", "--dims", "4x4", "--protocol", "clrp", "--load", "0.05",
            "--length", "16", "--duration", "500", "--mtbf", "600",
            "--mttr", "300", "--max-cycles", "50000",
        ])
        assert code == 0
        assert "delivered" in capsys.readouterr().out

    def test_run_with_explicit_schedule_and_reliability(self, capsys):
        code = main([
            "run", "--dims", "4x4", "--protocol", "wormhole", "--load",
            "0.05", "--length", "8", "--duration", "300",
            "--fault-schedule", "50:kill:5:0,150:heal:5:0", "--reliable",
            "--max-cycles", "50000",
        ])
        assert code == 0

    def test_mtbf_and_schedule_are_exclusive(self, capsys):
        code = main([
            "run", "--dims", "4x4", "--protocol", "wormhole",
            "--mtbf", "100", "--fault-schedule", "50:kill:5:0",
        ])
        assert code == 2
        assert "mutually exclusive" in capsys.readouterr().err

    def test_bad_schedule_spec_rejected(self, capsys):
        code = main([
            "run", "--dims", "4x4", "--fault-schedule", "50:explode:5:0",
        ])
        assert code == 2


class TestChaos:
    def test_chaos_smoke_passes(self, capsys):
        code = main([
            "chaos", "--dims", "4x4", "--duration", "300", "--max-cycles",
            "40000", "--mtbf", "500", "--mttr", "250", "--seeds", "0",
            "--protocols", "clrp,wormhole", "--length", "8", "--load", "0.05",
        ])
        out = capsys.readouterr().out
        assert code == 0
        assert "all runs drained" in out
        assert "clrp#0" in out and "wormhole#0" in out

    def test_chaos_rejects_explicit_schedule(self, capsys):
        code = main([
            "chaos", "--dims", "4x4", "--fault-schedule", "10:kill:0:0",
        ])
        assert code == 2
