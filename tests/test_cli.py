"""Tests for the command-line front-end."""

import json
from pathlib import Path

import pytest

from repro.analysis.experiments import run_experiment
from repro.cli import build_config, build_items, main, make_parser, parse_dims
from repro.errors import ConfigError
from repro.observe import read_metrics_jsonl, validate_chrome_trace


class TestParseDims:
    def test_basic(self):
        assert parse_dims("8x8") == (8, 8)
        assert parse_dims("2x2x2") == (2, 2, 2)
        assert parse_dims("4X4") == (4, 4)

    def test_bad(self):
        with pytest.raises(ConfigError):
            parse_dims("8by8")


class TestRun:
    def test_run_clrp(self, capsys):
        code = main([
            "run", "--dims", "4x4", "--protocol", "clrp",
            "--load", "0.1", "--length", "16", "--duration", "400",
        ])
        out = capsys.readouterr().out
        assert code == 0
        assert "4x4 mesh" in out
        assert "delivered" in out
        assert "mean" in out

    def test_run_wormhole_baseline(self, capsys):
        code = main([
            "run", "--dims", "4x4", "--protocol", "wormhole",
            "--load", "0.1", "--length", "16", "--duration", "400",
        ])
        assert code == 0
        assert "wormhole" in capsys.readouterr().out

    def test_run_carp_compiles(self, capsys):
        code = main([
            "run", "--dims", "4x4", "--protocol", "carp",
            "--pattern", "neighbor",
            "--load", "0.15", "--length", "16", "--duration", "600",
        ])
        assert code == 0

    def test_run_torus_needs_vcs(self, capsys):
        code = main([
            "run", "--topology", "torus", "--dims", "4x4", "--vcs", "1",
            "--protocol", "wormhole",
        ])
        assert code == 2
        assert "configuration error" in capsys.readouterr().err

    def test_run_with_monitors(self, capsys):
        code = main([
            "run", "--dims", "4x4", "--load", "0.1", "--length", "8",
            "--duration", "300", "--deadlock-check", "50",
            "--progress-timeout", "10000",
        ])
        assert code == 0


class TestSweep:
    def test_sweep_two_points(self, capsys):
        code = main([
            "sweep", "--dims", "4x4", "--protocol", "wormhole",
            "--loads", "0.05,0.1", "--length", "16", "--duration", "500",
        ])
        out = capsys.readouterr().out
        assert code == 0
        assert "offered load" in out
        assert out.count("load 0.0") >= 1

    def test_sweep_parallel_jobs_flag(self, capsys):
        code = main([
            "sweep", "--dims", "4x4", "--protocol", "wormhole",
            "--loads", "0.05,0.1", "--length", "16", "--duration", "400",
            "--jobs", "2",
        ])
        out = capsys.readouterr().out
        assert code == 0
        assert "offered load" in out

    def test_sweep_serial_parallel_identical_output(self, capsys):
        argv = [
            "sweep", "--dims", "4x4", "--protocol", "clrp",
            "--loads", "0.05,0.1", "--length", "16", "--duration", "400",
        ]
        assert main(argv) == 0
        serial_out = capsys.readouterr().out
        assert main(argv + ["--jobs", "2"]) == 0
        parallel_out = capsys.readouterr().out
        assert parallel_out == serial_out

    def test_sweep_throughput_uses_run_experiment_window(self, capsys):
        """The reported throughput must follow run_experiment methodology.

        The old window cut at ``duration``: messages still draining after
        the injection window were silently excluded from accepted
        throughput.  The aligned window runs from ``duration // 5`` to the
        last delivery, exactly like ``run_experiment(warmup=duration//5)``.
        """
        argv = [
            "sweep", "--dims", "4x4", "--protocol", "wormhole",
            "--loads", "0.3", "--length", "32", "--duration", "300",
        ]
        args = make_parser().parse_args(argv)
        config = build_config(args)
        items = build_items(config, args, 0.3)
        expected = run_experiment(
            config, items, max_cycles=args.max_cycles,
            warmup=args.duration // 5,
        )
        # Sanity: the run must actually drain past the injection window,
        # otherwise this test wouldn't exercise the fix.
        last_delivery = max(
            m.delivered for m in expected.sim.stats.delivered_records()
        )
        assert last_delivery > args.duration
        assert main(argv) == 0
        out = capsys.readouterr().out
        assert f"load 0.3: throughput {expected.throughput:.3f}" in out


class TestCompare:
    def test_compare_all_protocols(self, capsys):
        code = main([
            "compare", "--dims", "4x4", "--load", "0.1",
            "--length", "16", "--duration", "400",
        ])
        out = capsys.readouterr().out
        assert code == 0
        for name in ("wormhole", "clrp", "carp"):
            assert name in out


class TestVariantsFlag:
    def test_clrp_variant_accepted(self, capsys):
        code = main([
            "run", "--dims", "4x4", "--clrp-variant", "immediate_force",
            "--load", "0.1", "--length", "16", "--duration", "300",
        ])
        assert code == 0


class TestHeatmap:
    def test_heatmap_renders(self, capsys):
        code = main([
            "heatmap", "--dims", "4x4", "--load", "0.2",
            "--length", "16", "--duration", "500",
        ])
        out = capsys.readouterr().out
        assert code == 0
        assert "link load" in out
        assert "deliveries per node" in out
        assert "o" in out


class TestFaultFlag:
    def test_run_with_faults(self, capsys):
        code = main([
            "run", "--dims", "4x4", "--protocol", "clrp",
            "--load", "0.05", "--length", "16", "--duration", "300",
            "--fault-fraction", "0.1",
        ])
        # Some messages may be dropped (undeliverable via S0): both exit
        # codes are legitimate; what matters is it runs and reports.
        assert code in (0, 1)
        assert "machine" in capsys.readouterr().out


class TestDynamicFaultFlags:
    def test_run_with_mtbf(self, capsys):
        code = main([
            "run", "--dims", "4x4", "--protocol", "clrp", "--load", "0.05",
            "--length", "16", "--duration", "500", "--mtbf", "600",
            "--mttr", "300", "--max-cycles", "50000",
        ])
        assert code == 0
        assert "delivered" in capsys.readouterr().out

    def test_run_with_explicit_schedule_and_reliability(self, capsys):
        code = main([
            "run", "--dims", "4x4", "--protocol", "wormhole", "--load",
            "0.05", "--length", "8", "--duration", "300",
            "--fault-schedule", "50:kill:5:0,150:heal:5:0", "--reliable",
            "--max-cycles", "50000",
        ])
        assert code == 0

    def test_mtbf_and_schedule_are_exclusive(self, capsys):
        code = main([
            "run", "--dims", "4x4", "--protocol", "wormhole",
            "--mtbf", "100", "--fault-schedule", "50:kill:5:0",
        ])
        assert code == 2
        assert "mutually exclusive" in capsys.readouterr().err

    def test_bad_schedule_spec_rejected(self, capsys):
        code = main([
            "run", "--dims", "4x4", "--fault-schedule", "50:explode:5:0",
        ])
        assert code == 2


class TestChaos:
    def test_chaos_smoke_passes(self, capsys):
        code = main([
            "chaos", "--dims", "4x4", "--duration", "300", "--max-cycles",
            "40000", "--mtbf", "500", "--mttr", "250", "--seeds", "0",
            "--protocols", "clrp,wormhole", "--length", "8", "--load", "0.05",
        ])
        out = capsys.readouterr().out
        assert code == 0
        assert "all runs drained" in out
        assert "clrp#0" in out and "wormhole#0" in out

    def test_chaos_rejects_explicit_schedule(self, capsys):
        code = main([
            "chaos", "--dims", "4x4", "--fault-schedule", "10:kill:0:0",
        ])
        assert code == 2


class TestTrace:
    def test_trace_subcommand_writes_valid_trace(self, tmp_path, capsys):
        trace_path = tmp_path / "trace.json"
        code = main([
            "trace", "--dims", "4x4", "--load", "0.1",
            "--length", "16", "--duration", "400",
            "--trace-out", str(trace_path),
        ])
        out = capsys.readouterr().out
        assert code == 0
        validate_chrome_trace(json.loads(trace_path.read_text()))
        assert "event kind" in out  # per-kind census table
        assert "probe_hop" in out
        assert "0 dropped" in out

    def test_trace_with_metrics_dump(self, tmp_path, capsys):
        trace_path = tmp_path / "trace.json"
        metrics_path = tmp_path / "metrics.jsonl"
        code = main([
            "trace", "--dims", "4x4", "--load", "0.1",
            "--length", "16", "--duration", "400",
            "--trace-out", str(trace_path),
            "--metrics-every", "50", "--metrics-out", str(metrics_path),
        ])
        assert code == 0
        registry = read_metrics_jsonl(metrics_path)
        assert "messages.outstanding" in registry.series
        # Counter tracks from the registry ride along in the trace.
        obj = json.loads(trace_path.read_text())
        assert any(ev["ph"] == "C" for ev in obj["traceEvents"])

    def test_trace_limit_drops_oldest(self, tmp_path, capsys):
        code = main([
            "trace", "--dims", "4x4", "--load", "0.2",
            "--length", "16", "--duration", "600",
            "--trace-limit", "32",
            "--trace-out", str(tmp_path / "t.json"),
        ])
        assert code == 0
        out = capsys.readouterr().out
        assert "raise --trace-limit" in out

    def test_run_accepts_trace_flag(self, tmp_path, capsys):
        trace_path = tmp_path / "run-trace.json"
        code = main([
            "run", "--dims", "4x4", "--load", "0.1",
            "--length", "16", "--duration", "300",
            "--trace", "--trace-out", str(trace_path),
        ])
        assert code == 0
        validate_chrome_trace(json.loads(trace_path.read_text()))
        assert "trace:" in capsys.readouterr().out

    def test_run_without_trace_writes_nothing(self, tmp_path, capsys):
        code = main([
            "run", "--dims", "4x4", "--load", "0.1",
            "--length", "16", "--duration", "300",
            "--trace-out", str(tmp_path / "never.json"),
        ])
        assert code == 0
        assert not (tmp_path / "never.json").exists()

    def test_metrics_out_requires_cadence(self, tmp_path, capsys):
        code = main([
            "run", "--dims", "4x4", "--duration", "300",
            "--metrics-out", str(tmp_path / "m.jsonl"),
        ])
        assert code == 2
        assert "--metrics-every" in capsys.readouterr().err


class TestMetricsEveryFlag:
    def test_sweep_carries_metrics_every_into_store(self, tmp_path, capsys):
        store = tmp_path / "results.jsonl"
        code = main([
            "sweep", "--dims", "4x4", "--protocol", "wormhole",
            "--loads", "0.05", "--length", "16", "--duration", "400",
            "--metrics-every", "100", "--store", str(store),
        ])
        assert code == 0
        rows = [json.loads(line) for line in store.read_text().splitlines()]
        observe = rows[0]["metrics"]["observe"]
        assert observe["every"] == 100
        assert observe["samples"] >= 1
        assert "messages.outstanding" in observe["series"]

    def test_verbose_flag_parses(self, capsys):
        code = main([
            "-v", "run", "--dims", "4x4", "--load", "0.1",
            "--length", "16", "--duration", "300",
        ])
        assert code == 0


class TestVerifyCdg:
    def test_single_config_deadlock_free(self, capsys):
        code = main([
            "verify-cdg", "--protocol", "wormhole",
            "--topology", "torus", "--dims", "4x4",
        ])
        assert code == 0
        out = capsys.readouterr().out
        assert "acyclic" in out
        assert "1/1 configurations deadlock-free" in out

    def test_all_shipped_configs_pass(self, capsys):
        code = main(["verify-cdg", "--all"])
        assert code == 0
        out = capsys.readouterr().out
        assert "11/11 configurations deadlock-free" in out

    def test_cyclic_config_flagged(self, capsys):
        code = main([
            "verify-cdg", "--protocol", "wormhole",
            "--topology", "torus", "--dims", "4x4",
            "--assume-classes", "1",
        ])
        assert code == 1
        assert "CYCLE" in capsys.readouterr().out

    def test_expect_cyclic_inverts_verdict(self, capsys):
        code = main([
            "verify-cdg", "--protocol", "wormhole",
            "--topology", "torus", "--dims", "4x4",
            "--assume-classes", "1", "--expect-cyclic",
        ])
        assert code == 0
        assert "cyclic as expected" in capsys.readouterr().out

    def test_all_expect_cyclic_exits_nonzero(self, capsys):
        # Shipped configs are all deadlock-free, so --expect-cyclic must
        # turn the run red: the exit path CI relies on to catch a
        # green-washed analyzer.
        code = main(["verify-cdg", "--all", "--expect-cyclic"])
        assert code == 1
        assert "0/11" in capsys.readouterr().out

    def test_smt_backend_all_shipped(self, capsys):
        code = main(["verify-cdg", "--all", "--backend", "smt"])
        assert code == 0
        out = capsys.readouterr().out
        assert "11/11 configurations deadlock-free" in out
        assert "SMT [" in out

    def test_both_backends_resolve_over_approximation(self, capsys):
        # Dateline-free 4-ring with adaptive routing: search refutes,
        # the subrelation proof certifies free -- the audit must report
        # the resolution and exit 0, not raise a false alarm.
        code = main([
            "verify-cdg", "--protocol", "wormhole",
            "--topology", "torus", "--dims", "4",
            "--routing", "adaptive", "--vcs", "3",
            "--assume-classes", "1", "--backend", "both",
        ])
        assert code == 0
        out = capsys.readouterr().out
        assert "over-approximat" in out
        assert "1/1 configurations deadlock-free" in out

    def test_smt_backend_expect_cyclic(self, capsys):
        code = main([
            "verify-cdg", "--protocol", "wormhole",
            "--topology", "torus", "--dims", "4x4",
            "--assume-classes", "1", "--backend", "smt",
            "--expect-cyclic",
        ])
        assert code == 0
        assert "cyclic as expected" in capsys.readouterr().out

    def test_emit_and_check_certificates(self, tmp_path, capsys):
        certs = tmp_path / "certs"
        code = main([
            "verify-cdg", "--protocol", "wormhole",
            "--topology", "mesh", "--dims", "4x4",
            "--backend", "smt", "--emit-certificates", str(certs),
        ])
        assert code == 0
        files = list(certs.glob("*.json"))
        assert len(files) == 1
        capsys.readouterr()
        code = main(["verify-cdg", "--check-certificates", str(certs)])
        assert code == 0
        assert "1/1 certificates replayed clean" in capsys.readouterr().out

    def test_check_certificates_flags_tampering(self, tmp_path, capsys):
        certs = tmp_path / "certs"
        main([
            "verify-cdg", "--protocol", "wormhole",
            "--topology", "mesh", "--dims", "4x4",
            "--backend", "smt", "--emit-certificates", str(certs),
        ])
        path = next(certs.glob("*.json"))
        cert = json.loads(path.read_text(encoding="utf-8"))
        cert["graph"]["sha256"] = "0" * 64
        path.write_text(json.dumps(cert), encoding="utf-8")
        capsys.readouterr()
        code = main(["verify-cdg", "--check-certificates", str(certs)])
        assert code == 1
        assert "drift" in capsys.readouterr().out

    def test_committed_certificates_replay_via_cli(self, capsys):
        code = main([
            "verify-cdg", "--check-certificates",
            str(Path(__file__).parent / "corpus" / "certificates"),
        ])
        assert code == 0
        out = capsys.readouterr().out
        assert "certificates replayed clean" in out

    def test_seed_fuzzer_declines_counterfactual_rejection(
        self, tmp_path, capsys
    ):
        # Config validation enforces the VC floors, so every *runnable*
        # config is provable -- the only CLI-reachable rejections are
        # counterfactual (--assume-classes), which must NOT be seeded:
        # the runtime does not implement the analysed discipline.  (The
        # API path, rejection_jobspecs/dump_rejection_specs, is covered
        # in tests/verify/test_smt.py.)
        seeds = tmp_path / "seeds"
        code = main([
            "verify-cdg", "--protocol", "wormhole",
            "--topology", "torus", "--dims", "4x4",
            "--assume-classes", "1",
            "--backend", "smt", "--seed-fuzzer", str(seeds),
        ])
        assert code == 1
        assert "not seeding" in capsys.readouterr().out
        assert not list(seeds.glob("*.json")) if seeds.exists() else True

    def test_assume_classes_above_pinned_exits_config_error(self, capsys):
        code = main([
            "verify-cdg", "--protocol", "wormhole",
            "--topology", "fullmesh", "--dims", "8",
            "--assume-classes", "2",
        ])
        assert code == 2
        assert "pins" in capsys.readouterr().err

    def test_smt_without_z3_prints_fallback_note(self, capsys):
        from repro.verify.smt import have_z3

        if have_z3():
            pytest.skip("z3 installed; fallback note not expected")
        code = main([
            "verify-cdg", "--protocol", "wormhole",
            "--topology", "mesh", "--dims", "4x4", "--backend", "smt",
        ])
        assert code == 0
        assert "native exact" in capsys.readouterr().out


class TestFuzzCommand:
    def test_smoke_budget_passes_and_caches(self, tmp_path, capsys):
        store = tmp_path / "fuzz.jsonl"
        argv = ["fuzz", "--budget", "2", "--seed", "0",
                "--store", str(store)]
        assert main(argv) == 0
        assert "2/2 scenarios passed" in capsys.readouterr().out
        assert main(argv) == 0
        assert "(2 cached)" in capsys.readouterr().out

    def test_replay_corpus_reproducer(self, capsys):
        corpus = Path(__file__).resolve().parent / "corpus"
        code = main([
            "fuzz", "--replay", str(corpus / "clrp_phase_budget.json"),
        ])
        assert code == 0
        assert "replay passed" in capsys.readouterr().out

    def test_failures_dump_reproducers(self, tmp_path, capsys, monkeypatch):
        # Re-introduce the CLRP phase-budget bug; the campaign must fail,
        # write a replayable reproducer, and the reproducer must replay
        # with the same failure.
        from repro.core.clrp import CLRPEngine

        orig = CLRPEngine._open_entry

        def buggy(self, msg, cycle):
            orig(self, msg, cycle)
            entry = self.cache.lookup(msg.dst)
            if entry is not None:
                entry.switches_tried = 0

        monkeypatch.setattr(CLRPEngine, "_open_entry", buggy)
        out_dir = tmp_path / "findings"
        code = main([
            "fuzz", "--budget", "6", "--seed", "0", "--no-shrink",
            "--out", str(out_dir),
        ])
        assert code == 1
        out = capsys.readouterr().out
        assert "ProtocolError" in out
        dumps = sorted(out_dir.glob("*.json"))
        assert dumps
        assert main(["fuzz", "--replay", str(dumps[0])]) == 1
        assert "replay failed: ProtocolError" in capsys.readouterr().out
