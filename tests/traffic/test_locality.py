"""Tests for the spatio-temporal locality workload generator."""

import pytest

from repro.errors import ConfigError
from repro.network.message import MessageFactory
from repro.sim.rng import SimRandom
from repro.topology import Mesh
from repro.traffic.locality import LocalityWorkloadBuilder


def build(reuse=8.0, spatial=1.0, load=0.2, duration=4000, seed=3):
    topo = Mesh((4, 4))
    builder = LocalityWorkloadBuilder(topo, reuse=reuse, spatial_decay=spatial)
    return topo, builder.build(
        MessageFactory(),
        offered_load=load,
        length=16,
        duration=duration,
        rng=SimRandom(seed),
    )


def mean_run_length(msgs):
    """Average consecutive same-partner run per source."""
    runs, total = 0, 0
    by_src = {}
    for m in sorted(msgs, key=lambda m: (m.src, m.created)):
        by_src.setdefault(m.src, []).append(m.dst)
    for dsts in by_src.values():
        prev = None
        for d in dsts:
            if d != prev:
                runs += 1
                prev = d
            total += 1
    return total / runs if runs else 0.0


class TestTemporalLocality:
    def test_high_reuse_long_runs(self):
        _, low = build(reuse=1.0)
        _, high = build(reuse=16.0)
        assert mean_run_length(high) > 2 * mean_run_length(low)

    def test_reuse_one_means_fresh_partner_probability(self):
        _, msgs = build(reuse=1.0)
        # With reuse=1 the partner switches after (almost) every message.
        assert mean_run_length(msgs) < 2.0

    def test_reuse_below_one_rejected(self):
        with pytest.raises(ConfigError):
            LocalityWorkloadBuilder(Mesh((4, 4)), reuse=0.5)


class TestSpatialLocality:
    def test_decay_shortens_distances(self):
        topo, uniform = build(spatial=1.0, duration=6000)
        _, local = build(spatial=0.3, duration=6000)
        mean_d_uniform = sum(topo.distance(m.src, m.dst) for m in uniform) / len(uniform)
        mean_d_local = sum(topo.distance(m.src, m.dst) for m in local) / len(local)
        assert mean_d_local < mean_d_uniform - 0.5

    def test_decay_range_checked(self):
        with pytest.raises(ConfigError):
            LocalityWorkloadBuilder(Mesh((4, 4)), reuse=2.0, spatial_decay=0.0)
        with pytest.raises(ConfigError):
            LocalityWorkloadBuilder(Mesh((4, 4)), reuse=2.0, spatial_decay=1.5)


class TestStreamShape:
    def test_sorted_and_no_self_messages(self):
        _, msgs = build()
        assert msgs
        assert all(m.src != m.dst for m in msgs)
        times = [m.created for m in msgs]
        assert times == sorted(times)

    def test_deterministic(self):
        _, a = build(seed=9)
        _, b = build(seed=9)
        assert [(m.src, m.dst, m.created) for m in a] == [
            (m.src, m.dst, m.created) for m in b
        ]

    def test_load_validation(self):
        with pytest.raises(ConfigError):
            build(load=0.0)
