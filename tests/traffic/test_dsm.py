"""Tests for the DSM miss-traffic workload."""

import pytest

from repro.errors import ConfigError
from repro.network.message import MessageFactory
from repro.sim.rng import SimRandom
from repro.topology import Mesh
from repro.traffic.workloads import dsm_workload


def build(**kwargs):
    topo = Mesh((4, 4))
    defaults = dict(misses_per_node=10, rng=SimRandom(4))
    defaults.update(kwargs)
    return topo, dsm_workload(MessageFactory(), topo, **defaults)


class TestShape:
    def test_request_reply_pairing(self):
        topo, msgs = build()
        requests = [m for m in msgs if m.length == 1]
        replies = [m for m in msgs if m.length == 8]
        assert len(requests) == len(replies) == 16 * 10
        # Every request has a reply from its home, memory_latency later.
        reply_keys = {(m.src, m.dst, m.created) for m in replies}
        for req in requests:
            assert (req.dst, req.src, req.created + 30) in reply_keys

    def test_homes_are_nearby(self):
        topo, msgs = build(home_window=4)
        for m in msgs:
            assert topo.distance(m.src, m.dst) <= 4

    def test_home_working_set_bounded(self):
        topo, msgs = build(home_window=2, misses_per_node=30)
        homes_of_0 = {m.dst for m in msgs if m.src == 0 and m.length == 1}
        assert len(homes_of_0) <= 2

    def test_sorted_by_creation(self):
        _, msgs = build()
        times = [m.created for m in msgs]
        assert times == sorted(times)

    def test_deterministic(self):
        _, a = build()
        _, b = build()
        assert [(m.src, m.dst, m.created) for m in a] == [
            (m.src, m.dst, m.created) for m in b
        ]

    def test_validation(self):
        topo = Mesh((4, 4))
        with pytest.raises(ConfigError):
            dsm_workload(MessageFactory(), topo, misses_per_node=0,
                         rng=SimRandom(0))
        with pytest.raises(ConfigError):
            dsm_workload(MessageFactory(), topo, misses_per_node=1,
                         home_window=0, rng=SimRandom(0))


class TestEndToEnd:
    def test_dsm_traffic_favours_circuits(self):
        """The paper's DSM pitch: short messages, heavy reuse -> circuits
        win on miss latency."""
        from repro.network.network import Network
        from repro.sim.config import NetworkConfig, WaveConfig
        from repro.sim.engine import Simulator

        def run(protocol):
            config = NetworkConfig(
                dims=(4, 4),
                protocol=protocol,
                wave=None if protocol == "wormhole" else WaveConfig(
                    num_switches=4
                ),
            )
            net = Network(config)
            # DSM-realistic miss rates: the wormhole plane contends hard,
            # circuits serve 16-flit lines from a 2-home working set.
            msgs = dsm_workload(
                MessageFactory(), net.topology, misses_per_node=50,
                home_window=2, miss_gap=8, line_length=16,
                rng=SimRandom(9),
            )
            result = Simulator(net, msgs).run(600_000)
            assert result.delivered == result.injected
            return net.stats.mean_latency()

        assert run("clrp") < run("wormhole")
