"""Tests for trace record/replay."""

import pytest

from repro.errors import ConfigError
from repro.network.message import MessageFactory
from repro.sim.rng import SimRandom
from repro.traffic.patterns import UniformPattern
from repro.traffic.trace import load_trace, save_trace
from repro.traffic.workloads import uniform_workload


def sample(seed=1):
    return uniform_workload(
        MessageFactory(),
        UniformPattern(16),
        num_nodes=16,
        offered_load=0.1,
        length=16,
        duration=500,
        rng=SimRandom(seed),
    )


class TestRoundTrip:
    def test_save_load_preserves_stream(self, tmp_path):
        msgs = sample()
        path = tmp_path / "trace.jsonl"
        n = save_trace(msgs, path)
        assert n == len(msgs)
        back = load_trace(path, MessageFactory())
        assert [(m.src, m.dst, m.length, m.created) for m in back] == [
            (m.src, m.dst, m.length, m.created) for m in msgs
        ]

    def test_hints_preserved(self, tmp_path):
        msgs = sample()
        for m in msgs[:3]:
            m.circuit_hint = True
        path = tmp_path / "trace.jsonl"
        save_trace(msgs, path)
        back = load_trace(path, MessageFactory())
        assert [m.circuit_hint for m in back[:3]] == [True, True, True]

    def test_ids_reassigned(self, tmp_path):
        msgs = sample()
        path = tmp_path / "t.jsonl"
        save_trace(msgs, path)
        factory = MessageFactory()
        factory.make(0, 1, 1, 0)  # consume id 0
        back = load_trace(path, factory)
        assert back[0].msg_id != msgs[0].msg_id or msgs[0].msg_id != 0

    def test_blank_lines_skipped(self, tmp_path):
        path = tmp_path / "t.jsonl"
        save_trace(sample()[:2], path)
        with open(path, "a") as fh:
            fh.write("\n\n")
        assert len(load_trace(path, MessageFactory())) == 2

    def test_bad_record_raises_with_location(self, tmp_path):
        path = tmp_path / "bad.jsonl"
        path.write_text('{"src": 0}\n')
        with pytest.raises(ConfigError, match="bad.jsonl:1"):
            load_trace(path, MessageFactory())
