"""Tests for the CARP compiler (directive emission)."""

import pytest

from repro.core.carp import CircuitClose, CircuitOpen
from repro.errors import ConfigError
from repro.network.message import MessageFactory
from repro.traffic.compiler import compile_directives
from repro.traffic.workloads import pair_stream_workload


def pair_train(n=6, length=32, gap=50, pair=(0, 5)):
    return pair_stream_workload(
        MessageFactory(), [pair], messages_per_pair=n, length=length, gap=gap
    )


class TestEpisodeDetection:
    def test_hot_pair_gets_circuit(self):
        msgs = pair_train(n=8)
        items, report = compile_directives(msgs, min_messages=4, min_flits=64)
        assert report.episodes_circuit == 1
        assert report.messages_hinted == 8
        assert all(m.circuit_hint for m in msgs)
        opens = [d for d in report.directives if isinstance(d, CircuitOpen)]
        closes = [d for d in report.directives if isinstance(d, CircuitClose)]
        assert len(opens) == len(closes) == 1
        assert opens[0].node == 0 and opens[0].dst == 5

    def test_cold_pair_left_alone(self):
        msgs = pair_train(n=2)
        items, report = compile_directives(msgs, min_messages=4)
        assert report.episodes_circuit == 0
        assert not report.directives
        assert all(m.circuit_hint is False for m in msgs)

    def test_flit_threshold(self):
        msgs = pair_train(n=5, length=4)  # 20 flits total
        _, report = compile_directives(msgs, min_messages=4, min_flits=64)
        assert report.episodes_circuit == 0

    def test_gap_splits_episodes(self):
        f = MessageFactory()
        early = [f.make(0, 5, 32, t) for t in (0, 10, 20, 30)]
        late = [f.make(0, 5, 32, t) for t in (50_000, 50_010, 50_020, 50_030)]
        _, report = compile_directives(
            early + late, min_messages=4, min_flits=64, max_gap=1000
        )
        assert report.episodes_found == 2
        assert report.episodes_circuit == 2
        assert len(report.directives) == 4

    def test_open_lead_and_close_lag(self):
        msgs = pair_train(n=4, gap=100)
        _, report = compile_directives(
            msgs, min_messages=4, min_flits=1, open_lead=30, close_lag=70
        )
        opens = [d for d in report.directives if isinstance(d, CircuitOpen)]
        closes = [d for d in report.directives if isinstance(d, CircuitClose)]
        assert opens[0].created == 0  # clamped at zero (first msg at 0)
        assert closes[0].created == 300 + 70

    def test_items_sorted_with_directives_first_on_ties(self):
        msgs = pair_train(n=4, gap=10)
        items, _ = compile_directives(msgs, min_messages=4, min_flits=1,
                                      open_lead=0)
        assert isinstance(items[0], CircuitOpen)
        times = [getattr(i, "created") for i in items]
        assert times == sorted(times)

    def test_hint_fraction(self):
        f = MessageFactory()
        hot = [f.make(0, 5, 32, t * 10) for t in range(8)]
        cold = [f.make(1, 6, 32, t * 997) for t in range(2)]
        _, report = compile_directives(hot + cold, min_messages=4, max_gap=100)
        assert report.hint_fraction == pytest.approx(0.8)

    def test_validation(self):
        with pytest.raises(ConfigError):
            compile_directives([], min_messages=0)
        with pytest.raises(ConfigError):
            compile_directives([], open_lead=-1)
