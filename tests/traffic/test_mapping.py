"""Tests for process-to-processor mappings."""

import pytest

from repro.errors import ConfigError
from repro.network.message import MessageFactory
from repro.network.network import Network
from repro.sim.config import NetworkConfig
from repro.sim.engine import Simulator
from repro.sim.rng import SimRandom
from repro.topology import Mesh
from repro.traffic.mapping import (
    BlockMapping,
    IdentityMapping,
    RandomMapping,
    mean_communication_distance,
    remap_workload,
)
from repro.traffic.workloads import stencil_workload


class TestMappings:
    def test_identity(self):
        m = IdentityMapping(16)
        assert [m.place(i) for i in range(16)] == list(range(16))
        m.check_bijection()

    def test_identity_range_check(self):
        with pytest.raises(ConfigError):
            IdentityMapping(16).place(16)

    def test_random_is_bijection(self):
        m = RandomMapping(16, SimRandom(5))
        m.check_bijection()

    def test_random_deterministic_per_seed(self):
        a = RandomMapping(16, SimRandom(5))
        b = RandomMapping(16, SimRandom(5))
        assert [a.place(i) for i in range(16)] == [b.place(i) for i in range(16)]

    def test_block_mapping_is_bijection(self):
        topo = Mesh((4, 4))
        m = BlockMapping(topo, 2, 2)
        m.check_bijection()

    def test_block_mapping_groups_consecutive_ranks(self):
        topo = Mesh((4, 4))
        m = BlockMapping(topo, 2, 2)
        # Ranks 0..3 fill the first 2x2 block: pairwise distance <= 2.
        nodes = [m.place(r) for r in range(4)]
        for a in nodes:
            for b in nodes:
                assert topo.distance(a, b) <= 2

    def test_block_mapping_tiling_checked(self):
        topo = Mesh((4, 4))
        with pytest.raises(ConfigError):
            BlockMapping(topo, 3, 2)

    def test_block_mapping_needs_2d(self):
        with pytest.raises(ConfigError):
            BlockMapping(Mesh((4,)), 2, 2)


class TestRemap:
    def test_remap_preserves_everything_but_endpoints(self):
        factory = MessageFactory()
        msgs = [factory.make(0, 1, 8, 5, circuit_hint=True)]
        mapping = RandomMapping(16, SimRandom(1))
        out = remap_workload(msgs, mapping)
        assert out[0].msg_id == msgs[0].msg_id
        assert out[0].length == 8
        assert out[0].created == 5
        assert out[0].circuit_hint is True
        assert out[0].src == mapping.place(0)
        assert out[0].dst == mapping.place(1)
        # Input untouched.
        assert msgs[0].src == 0

    def test_identity_remap_is_noop(self):
        factory = MessageFactory()
        topo = Mesh((4, 4))
        msgs = stencil_workload(factory, topo, phases=1, phase_gap=1, length=4)
        out = remap_workload(msgs, IdentityMapping(16))
        assert [(m.src, m.dst) for m in out] == [(m.src, m.dst) for m in msgs]


class TestMappingEffect:
    """Section 1: good placement => spatial locality => better circuits."""

    def test_random_mapping_lengthens_communication(self):
        topo = Mesh((4, 4))
        factory = MessageFactory()
        msgs = stencil_workload(factory, topo, phases=1, phase_gap=1, length=4)
        identity_d = mean_communication_distance(
            remap_workload(msgs, IdentityMapping(16)), topo
        )
        random_d = mean_communication_distance(
            remap_workload(msgs, RandomMapping(16, SimRandom(2))), topo
        )
        assert identity_d == 1.0  # stencil neighbours
        assert random_d > 1.5

    def test_good_mapping_improves_clrp_latency(self):
        """The full pipeline: placement -> locality -> faster circuits."""

        def run(mapping_cls_seed):
            config = NetworkConfig(dims=(4, 4), protocol="clrp")
            net = Network(config)
            factory = MessageFactory()
            msgs = stencil_workload(
                factory, net.topology, phases=8, phase_gap=300, length=32
            )
            if mapping_cls_seed is None:
                mapped = remap_workload(msgs, IdentityMapping(16))
            else:
                mapped = remap_workload(
                    msgs, RandomMapping(16, SimRandom(mapping_cls_seed))
                )
            result = Simulator(net, mapped).run(100_000)
            assert result.delivered == result.injected
            return net.stats.mean_latency()

        good = run(None)
        bad = run(3)
        assert good < bad
