"""Tests for destination patterns."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.errors import ConfigError
from repro.sim.rng import SimRandom
from repro.topology import Mesh, Torus
from repro.traffic.patterns import (
    BitComplementPattern,
    BitReversalPattern,
    HotspotPattern,
    NearestNeighborPattern,
    PermutationPattern,
    TransposePattern,
    UniformPattern,
    make_pattern,
)


def stream(seed=0):
    return SimRandom(seed).stream("t")


class TestUniform:
    def test_never_self(self):
        p = UniformPattern(16)
        s = stream()
        assert all(p.pick(src, s) != src for src in range(16) for _ in range(20))

    def test_covers_all_destinations(self):
        p = UniformPattern(8)
        s = stream()
        seen = {p.pick(0, s) for _ in range(500)}
        assert seen == set(range(1, 8))

    def test_roughly_uniform(self):
        p = UniformPattern(4)
        s = stream()
        counts = {1: 0, 2: 0, 3: 0}
        for _ in range(3000):
            counts[p.pick(0, s)] += 1
        for c in counts.values():
            assert 800 < c < 1200

    def test_needs_two_nodes(self):
        with pytest.raises(ConfigError):
            UniformPattern(1)


class TestTranspose:
    def test_transposes_coordinates(self):
        topo = Mesh((4, 4))
        p = TransposePattern(topo)
        src = topo.node_at((1, 3))
        assert p.pick(src, stream()) == topo.node_at((3, 1))

    def test_diagonal_remapped_off_self(self):
        topo = Mesh((4, 4))
        p = TransposePattern(topo)
        src = topo.node_at((2, 2))
        assert p.pick(src, stream()) != src

    def test_requires_square_2d(self):
        with pytest.raises(ConfigError):
            TransposePattern(Mesh((4, 2)))
        with pytest.raises(ConfigError):
            TransposePattern(Mesh((2, 2, 2)))


class TestBitPatterns:
    def test_bit_reversal(self):
        p = BitReversalPattern(16)
        assert p.pick(0b0001, stream()) == 0b1000
        assert p.pick(0b0011, stream()) == 0b1100

    def test_bit_complement(self):
        p = BitComplementPattern(16)
        assert p.pick(0b0101, stream()) == 0b1010

    def test_power_of_two_required(self):
        with pytest.raises(ConfigError):
            BitReversalPattern(12)
        with pytest.raises(ConfigError):
            BitComplementPattern(12)

    def test_palindromes_remapped(self):
        p = BitReversalPattern(16)
        assert p.pick(0b1001, stream()) != 0b1001


class TestHotspot:
    def test_fraction_hits_hotspots(self):
        p = HotspotPattern(UniformPattern(16), hotspots=[7], fraction=0.5)
        s = stream()
        hits = sum(1 for _ in range(2000) if p.pick(0, s) == 7)
        assert 800 < hits  # ~50% plus uniform background

    def test_validation(self):
        with pytest.raises(ConfigError):
            HotspotPattern(UniformPattern(16), [], 0.5)
        with pytest.raises(ConfigError):
            HotspotPattern(UniformPattern(16), [3], 0.0)
        with pytest.raises(ConfigError):
            HotspotPattern(UniformPattern(16), [99], 0.5)


class TestNeighborAndPermutation:
    def test_neighbor_is_adjacent(self):
        topo = Torus((4, 4))
        p = NearestNeighborPattern(topo)
        s = stream()
        for src in range(16):
            dst = p.pick(src, s)
            assert topo.distance(src, dst) == 1

    def test_permutation_is_fixed_derangement(self):
        p = PermutationPattern(16, stream(1))
        s = stream(2)
        for src in range(16):
            d1 = p.pick(src, s)
            d2 = p.pick(src, s)
            assert d1 == d2 != src
        assert sorted(p.perm) == list(range(16))


class TestMakePattern:
    @pytest.mark.parametrize(
        "name",
        ["uniform", "transpose", "bit_reversal", "bit_complement",
         "neighbor", "permutation", "hotspot"],
    )
    def test_all_names(self, name):
        topo = Mesh((4, 4))
        p = make_pattern(name, topo, stream())
        assert p.pick(0, stream()) != 0

    def test_unknown(self):
        with pytest.raises(ConfigError):
            make_pattern("nope", Mesh((4, 4)), stream())


@given(st.integers(2, 64), st.integers(0, 1000))
def test_property_uniform_in_range(n, seed):
    p = UniformPattern(n)
    s = SimRandom(seed).stream("x")
    for src in range(0, n, max(1, n // 5)):
        dst = p.pick(src, s)
        assert 0 <= dst < n and dst != src
