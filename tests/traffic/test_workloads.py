"""Tests for workload builders."""

import pytest

from repro.errors import ConfigError
from repro.network.message import MessageFactory
from repro.sim.rng import SimRandom
from repro.topology import Mesh
from repro.traffic.patterns import UniformPattern
from repro.traffic.workloads import (
    all_to_all_workload,
    master_worker_workload,
    merge_streams,
    pair_stream_workload,
    stencil_workload,
    uniform_workload,
)


class TestUniformWorkload:
    def _build(self, load=0.1, length=16, duration=2000, seed=1):
        return uniform_workload(
            MessageFactory(),
            UniformPattern(16),
            num_nodes=16,
            offered_load=load,
            length=length,
            duration=duration,
            rng=SimRandom(seed),
        )

    def test_sorted_by_creation(self):
        msgs = self._build()
        times = [m.created for m in msgs]
        assert times == sorted(times)

    def test_rate_approximately_honoured(self):
        msgs = self._build(load=0.2, length=16, duration=5000)
        expected = 0.2 / 16 * 16 * 5000  # p * nodes * cycles
        assert 0.8 * expected < len(msgs) < 1.2 * expected

    def test_deterministic_per_seed(self):
        a = [(m.src, m.dst, m.created) for m in self._build(seed=7)]
        b = [(m.src, m.dst, m.created) for m in self._build(seed=7)]
        assert a == b

    def test_within_duration(self):
        msgs = self._build(duration=1000)
        assert all(m.created < 1000 for m in msgs)

    def test_at_most_one_message_per_node_cycle(self):
        msgs = self._build(load=0.9, length=1, duration=500)
        slots = [(m.src, m.created) for m in msgs]
        assert len(slots) == len(set(slots))

    def test_load_validation(self):
        with pytest.raises(ConfigError):
            self._build(load=0.0)
        with pytest.raises(ConfigError):
            self._build(load=2.0, length=1)


class TestPairStream:
    def test_train_spacing(self):
        msgs = pair_stream_workload(
            MessageFactory(), [(0, 5)], messages_per_pair=4, length=8, gap=10
        )
        assert [m.created for m in msgs] == [0, 10, 20, 30]
        assert all((m.src, m.dst) == (0, 5) for m in msgs)

    def test_multiple_pairs_interleaved_sorted(self):
        msgs = pair_stream_workload(
            MessageFactory(), [(0, 5), (1, 6)], messages_per_pair=2,
            length=8, gap=7
        )
        assert [m.created for m in msgs] == [0, 0, 7, 7]

    def test_validation(self):
        with pytest.raises(ConfigError):
            pair_stream_workload(
                MessageFactory(), [(0, 1)], messages_per_pair=0, length=8, gap=1
            )


class TestStencil:
    def test_every_edge_every_phase(self):
        topo = Mesh((3, 3))
        msgs = stencil_workload(
            MessageFactory(), topo, phases=2, phase_gap=100, length=8
        )
        directed_edges = len(topo.links())
        assert len(msgs) == 2 * directed_edges
        for m in msgs:
            assert topo.distance(m.src, m.dst) == 1

    def test_phases_separated(self):
        topo = Mesh((3, 3))
        msgs = stencil_workload(
            MessageFactory(), topo, phases=3, phase_gap=500, length=8
        )
        assert {m.created for m in msgs} == {0, 500, 1000}


class TestAllToAll:
    def test_complete_exchange(self):
        msgs = all_to_all_workload(
            MessageFactory(), 4, rounds=1, round_gap=100, length=8
        )
        pairs = {(m.src, m.dst) for m in msgs}
        assert pairs == {(a, b) for a in range(4) for b in range(4) if a != b}

    def test_stagger_spreads_sends(self):
        msgs = all_to_all_workload(
            MessageFactory(), 4, rounds=1, round_gap=100, length=8, stagger=5
        )
        assert {m.created for m in msgs} == {0, 5, 10}

    def test_rotation_balances_destinations(self):
        msgs = all_to_all_workload(
            MessageFactory(), 8, rounds=1, round_gap=100, length=8
        )
        at_t0 = [m for m in msgs if m.created == 0]
        # At each instant every node sends once and receives once.
        assert len({m.src for m in at_t0}) == 8
        assert len({m.dst for m in at_t0}) == 8


class TestMasterWorker:
    def test_tasks_and_results(self):
        msgs = master_worker_workload(
            MessageFactory(), 4, master=0, tasks_per_worker=2,
            task_length=8, result_length=32, task_gap=10, turnaround=50,
        )
        tasks = [m for m in msgs if m.src == 0]
        results = [m for m in msgs if m.dst == 0]
        assert len(tasks) == len(results) == 6  # 3 workers x 2 tasks
        assert all(m.length == 8 for m in tasks)
        assert all(m.length == 32 for m in results)

    def test_master_range_checked(self):
        with pytest.raises(ConfigError):
            master_worker_workload(
                MessageFactory(), 4, master=9, tasks_per_worker=1,
                task_length=8, result_length=8, task_gap=1, turnaround=1,
            )


class TestMergeStreams:
    def test_merges_sorted(self):
        f = MessageFactory()
        a = [f.make(0, 1, 8, t) for t in (0, 10, 20)]
        b = [f.make(2, 3, 8, t) for t in (5, 15)]
        merged = merge_streams(a, b)
        assert [m.created for m in merged] == [0, 5, 10, 15, 20]
