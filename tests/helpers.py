"""Shared test harnesses.

``build_plane`` wires a :class:`~repro.circuits.plane.WavePlane` over a
small topology with :class:`StubEngine` callbacks per node, so circuit
mechanics can be unit-tested without the full network stack.
"""

from __future__ import annotations

from repro.circuits.plane import WavePlane
from repro.sim.config import WaveConfig
from repro.sim.stats import StatsCollector
from repro.topology import Mesh


class StubEngine:
    """Records every plane callback; optionally auto-releases circuits."""

    def __init__(self, plane: WavePlane, node: int) -> None:
        self.plane = plane
        self.node = node
        self.established = []
        self.failed = []
        self.release_requests = []
        self.released = []
        self.transfers_done = []
        self.auto_release = True  # honour release requests immediately

    def circuit_established(self, circuit, cycle):
        self.established.append((circuit, cycle))

    def probe_failed(self, probe, circuit, cycle):
        self.failed.append((probe, circuit, cycle))

    def release_requested(self, circuit, cycle):
        self.release_requests.append((circuit, cycle))
        if self.auto_release and not circuit.in_use:
            self.plane.start_teardown(circuit, cycle)

    def circuit_released(self, circuit, cycle):
        self.released.append((circuit, cycle))

    def transfer_completed(self, transfer, cycle):
        self.transfers_done.append((transfer, cycle))


def build_plane(dims=(4, 4), **wave_kwargs):
    """A WavePlane over a mesh with stub engines on every node."""
    topo = Mesh(dims)
    config = WaveConfig(**wave_kwargs)
    stats = StatsCollector()
    plane = WavePlane(topo, config, stats)
    engines = []
    for n in range(topo.num_nodes):
        engine = StubEngine(plane, n)
        plane.register_engine(n, engine)
        engines.append(engine)
    return topo, plane, engines, stats


def run_plane(plane, start: int, cycles: int) -> int:
    for cycle in range(start, start + cycles):
        plane.step(cycle)
    return start + cycles


def run_until_idle(plane, start: int, limit: int = 10_000) -> int:
    cycle = start
    while not plane.is_idle():
        plane.step(cycle)
        cycle += 1
        if cycle - start > limit:
            raise AssertionError(f"plane not idle after {limit} cycles")
    return cycle
