"""Tests for configuration validation and derived properties."""

import pytest

from repro.errors import ConfigError
from repro.sim.config import NetworkConfig, WaveConfig, WormholeConfig


class TestWormholeConfig:
    def test_defaults_valid(self):
        cfg = WormholeConfig()
        assert cfg.vcs >= 1
        assert cfg.buffer_depth >= 1

    def test_rejects_zero_vcs(self):
        with pytest.raises(ConfigError):
            WormholeConfig(vcs=0)

    def test_rejects_negative_vcs(self):
        with pytest.raises(ConfigError):
            WormholeConfig(vcs=-3)

    def test_rejects_zero_buffer_depth(self):
        with pytest.raises(ConfigError):
            WormholeConfig(buffer_depth=0)

    def test_rejects_unknown_routing(self):
        with pytest.raises(ConfigError):
            WormholeConfig(routing="magic")  # type: ignore[arg-type]

    def test_rejects_negative_router_delay(self):
        with pytest.raises(ConfigError):
            WormholeConfig(router_delay=-1)

    def test_frozen(self):
        cfg = WormholeConfig()
        with pytest.raises(AttributeError):
            cfg.vcs = 5  # type: ignore[misc]


class TestWaveConfig:
    def test_defaults_valid(self):
        cfg = WaveConfig()
        assert cfg.num_switches >= 1
        assert cfg.wave_clock_ratio > 0

    def test_flits_per_cycle_combines_ratio_and_width(self):
        cfg = WaveConfig(wave_clock_ratio=4.0, channel_width_factor=0.5)
        assert cfg.flits_per_cycle == pytest.approx(2.0)

    def test_rejects_zero_switches(self):
        with pytest.raises(ConfigError):
            WaveConfig(num_switches=0)

    def test_rejects_negative_misroute_budget(self):
        with pytest.raises(ConfigError):
            WaveConfig(misroute_budget=-1)

    def test_misroute_budget_zero_allowed(self):
        assert WaveConfig(misroute_budget=0).misroute_budget == 0

    def test_rejects_zero_clock_ratio(self):
        with pytest.raises(ConfigError):
            WaveConfig(wave_clock_ratio=0.0)

    def test_rejects_width_factor_above_one(self):
        with pytest.raises(ConfigError):
            WaveConfig(channel_width_factor=1.5)

    def test_rejects_width_factor_zero(self):
        with pytest.raises(ConfigError):
            WaveConfig(channel_width_factor=0.0)

    def test_rejects_zero_window(self):
        with pytest.raises(ConfigError):
            WaveConfig(window=0)

    def test_rejects_unknown_replacement(self):
        with pytest.raises(ConfigError):
            WaveConfig(replacement="mru")  # type: ignore[arg-type]

    def test_rejects_zero_cache_size(self):
        with pytest.raises(ConfigError):
            WaveConfig(circuit_cache_size=0)

    def test_rejects_zero_wire_delay(self):
        with pytest.raises(ConfigError):
            WaveConfig(wire_delay=0)


class TestNetworkConfig:
    def test_defaults_valid(self):
        cfg = NetworkConfig()
        assert cfg.num_nodes == 64

    def test_num_nodes_product(self):
        cfg = NetworkConfig(dims=(4, 3, 2))
        assert cfg.num_nodes == 24

    def test_rejects_unknown_topology(self):
        with pytest.raises(ConfigError):
            NetworkConfig(topology="ring")  # type: ignore[arg-type]

    def test_rejects_empty_dims(self):
        with pytest.raises(ConfigError):
            NetworkConfig(dims=())

    def test_rejects_radix_one(self):
        with pytest.raises(ConfigError):
            NetworkConfig(dims=(4, 1))

    def test_hypercube_requires_radix_two(self):
        with pytest.raises(ConfigError):
            NetworkConfig(topology="hypercube", dims=(4, 4))

    def test_hypercube_radix_two_ok(self):
        cfg = NetworkConfig(topology="hypercube", dims=(2, 2, 2))
        assert cfg.num_nodes == 8

    def test_torus_requires_two_vcs_for_dateline(self):
        with pytest.raises(ConfigError):
            NetworkConfig(
                topology="torus", dims=(4, 4), wormhole=WormholeConfig(vcs=1)
            )

    def test_wave_protocol_requires_wave_config(self):
        with pytest.raises(ConfigError):
            NetworkConfig(protocol="clrp", wave=None)

    def test_wormhole_baseline_without_wave_ok(self):
        cfg = NetworkConfig(protocol="wormhole", wave=None)
        assert cfg.wave is None

    def test_describe_mentions_key_parameters(self):
        cfg = NetworkConfig(dims=(4, 4))
        text = cfg.describe()
        assert "4x4" in text
        assert "clrp" in text
        assert "wave switches" in text

    def test_describe_wormhole_baseline(self):
        cfg = NetworkConfig(protocol="wormhole", wave=None)
        assert "wave" not in cfg.describe()
