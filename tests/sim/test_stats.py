"""Tests for counters, histograms, time series and message records."""

import math

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.sim.config import SwitchingMode
from repro.sim.stats import Histogram, MessageRecord, StatsCollector, TimeSeries


class TestMessageRecord:
    def test_latency_undelivered_is_minus_one(self):
        rec = MessageRecord(msg_id=1, src=0, dst=5, length=16, created=10)
        assert rec.latency == -1
        assert rec.network_latency == -1

    def test_latency_computed_from_created(self):
        rec = MessageRecord(
            msg_id=1, src=0, dst=5, length=16, created=10, injected=12, delivered=50
        )
        assert rec.latency == 40
        assert rec.network_latency == 38


class TestHistogram:
    def test_rejects_bad_range(self):
        with pytest.raises(ValueError):
            Histogram(5.0, 5.0)

    def test_rejects_zero_bins(self):
        with pytest.raises(ValueError):
            Histogram(0.0, 1.0, bins=0)

    def test_mean_min_max(self):
        h = Histogram(0, 100, 10)
        h.extend([10, 20, 30])
        assert h.mean == pytest.approx(20.0)
        assert h.min == 10
        assert h.max == 30
        assert h.n == 3

    def test_overflow_underflow_buckets(self):
        h = Histogram(0, 10, 5)
        h.extend([-1, 5, 100])
        assert h.underflow == 1
        assert h.overflow == 1
        assert sum(h.counts) == 1

    def test_empty_mean_is_nan(self):
        h = Histogram(0, 10)
        assert math.isnan(h.mean)
        assert math.isnan(h.percentile(50))

    def test_percentile_monotone(self):
        h = Histogram(0, 100, 100)
        h.extend(range(100))
        p50 = h.percentile(50)
        p90 = h.percentile(90)
        assert p50 <= p90
        assert 40 <= p50 <= 60
        assert 80 <= p90 <= 100

    def test_percentile_range_check(self):
        h = Histogram(0, 10)
        with pytest.raises(ValueError):
            h.percentile(101)

    def test_stddev_of_constant_is_zero(self):
        h = Histogram(0, 10)
        h.extend([5.0] * 50)
        assert h.stddev == pytest.approx(0.0, abs=1e-9)

    @given(st.lists(st.floats(min_value=0, max_value=999), min_size=1, max_size=200))
    def test_mean_matches_reference(self, values):
        h = Histogram(0, 1000, 32)
        h.extend(values)
        assert h.mean == pytest.approx(sum(values) / len(values))
        assert h.min == pytest.approx(min(values))
        assert h.max == pytest.approx(max(values))

    @given(st.lists(st.floats(min_value=-100, max_value=2000), min_size=1))
    def test_counts_partition_samples(self, values):
        h = Histogram(0, 1000, 16)
        h.extend(values)
        assert h.underflow + h.overflow + sum(h.counts) == len(values)

    def test_bin_index_clamped_at_top_edge(self):
        # With width = 0.3 / 3 = 0.1 (inexact in binary), a sample one
        # ULP below ``hi`` divides to exactly 3.0 and would index past
        # the last bin without the clamp in ``add``.
        h = Histogram(0.0, 0.3, bins=3)
        h.add(math.nextafter(0.3, 0))
        assert h.counts[2] == 1
        assert h.overflow == 0
        assert h.underflow == 0

    def test_variance_stable_at_large_offset(self):
        # Sum-of-squares minus mean-squared cancels catastrophically for
        # samples near 1e8 with unit spread; Welford does not.
        h = Histogram(0, 2e8, 10)
        h.extend([1e8, 1e8 + 1, 1e8 + 2])
        assert h.variance == pytest.approx(2.0 / 3.0, rel=1e-12)
        assert h.stddev == pytest.approx(math.sqrt(2.0 / 3.0), rel=1e-12)

    @given(st.lists(st.floats(min_value=1e8, max_value=1e8 + 10), min_size=2,
                    max_size=50))
    def test_variance_matches_two_pass_reference(self, values):
        h = Histogram(0, 2e8, 10)
        h.extend(values)
        mean = sum(values) / len(values)
        ref = sum((v - mean) ** 2 for v in values) / len(values)
        assert h.variance == pytest.approx(ref, abs=1e-6)


class TestTimeSeries:
    def test_record_and_mean_after(self):
        ts = TimeSeries("throughput")
        ts.record(0, 1.0)
        ts.record(100, 3.0)
        ts.record(200, 5.0)
        assert ts.mean_after(100) == pytest.approx(4.0)
        assert len(ts) == 3

    def test_mean_after_no_samples_is_nan(self):
        ts = TimeSeries("x")
        ts.record(0, 1.0)
        assert math.isnan(ts.mean_after(10))

    @given(
        st.lists(st.tuples(st.integers(0, 500), st.floats(-1e3, 1e3)),
                 min_size=1, max_size=60),
        st.integers(-10, 510),
    )
    def test_mean_after_matches_linear_scan(self, samples, cutoff):
        # The bisect window start must agree with the O(n) rescan it
        # replaced, including duplicate timestamps at the cutoff.
        samples.sort(key=lambda s: s[0])
        ts = TimeSeries("x")
        for t, v in samples:
            ts.record(t, v)
        kept = [v for t, v in samples if t >= cutoff]
        got = ts.mean_after(cutoff)
        if not kept:
            assert math.isnan(got)
        else:
            assert got == pytest.approx(sum(kept) / len(kept))


class TestStatsCollector:
    def _mk(self, msg_id, delivered, length=8, created=0, mode=None):
        return MessageRecord(
            msg_id=msg_id,
            src=0,
            dst=1,
            length=length,
            created=created,
            injected=created,
            delivered=delivered,
            mode=mode,
        )

    def test_bump_and_count(self):
        s = StatsCollector()
        s.bump("probe.backtracks")
        s.bump("probe.backtracks", 2)
        assert s.count("probe.backtracks") == 3
        assert s.count("missing") == 0

    def test_delivered_undelivered_split(self):
        s = StatsCollector()
        s.new_message(self._mk(1, delivered=10))
        s.new_message(self._mk(2, delivered=-1))
        assert len(s.delivered_records()) == 1
        assert len(s.undelivered_records()) == 1

    def test_mean_latency(self):
        s = StatsCollector()
        s.new_message(self._mk(1, delivered=10, created=0))
        s.new_message(self._mk(2, delivered=30, created=10))
        assert s.mean_latency() == pytest.approx(15.0)

    def test_mean_latency_empty_is_nan(self):
        assert math.isnan(StatsCollector().mean_latency())

    def test_throughput_window(self):
        s = StatsCollector()
        s.new_message(self._mk(1, delivered=10, length=20))
        s.new_message(self._mk(2, delivered=90, length=20))
        s.new_message(self._mk(3, delivered=150, length=20))  # outside window
        assert s.throughput_flits_per_cycle(0, 100) == pytest.approx(0.4)

    def test_throughput_bad_window_nan(self):
        assert math.isnan(StatsCollector().throughput_flits_per_cycle(10, 10))

    def test_mode_breakdown(self):
        s = StatsCollector()
        s.new_message(self._mk(1, 10, mode=SwitchingMode.CIRCUIT_HIT))
        s.new_message(self._mk(2, 10, mode=SwitchingMode.CIRCUIT_HIT))
        s.new_message(self._mk(3, 10, mode=SwitchingMode.WORMHOLE_FALLBACK))
        assert s.mode_breakdown() == {"circuit_hit": 2, "wormhole_fallback": 1}

    def test_latency_histogram_covers_all(self):
        s = StatsCollector()
        for i in range(5):
            s.new_message(self._mk(i, delivered=10 * (i + 1)))
        h = s.latency_histogram()
        assert h.n == 5

    def test_series_cached_by_name(self):
        s = StatsCollector()
        assert s.get_series("tp") is s.get_series("tp")


class TestPercentileEdges:
    """Regressions for the percentile fixes: q=0 anchors at the true
    minimum and targets landing in the overflow bucket are not silently
    reported as interior bin midpoints."""

    def test_q0_is_min_and_q100_is_max(self):
        h = Histogram(0.0, 100.0, bins=10)
        h.extend([12.0, 55.0, 87.0])
        assert h.percentile(0) == 12.0
        assert h.percentile(100) == 87.0

    def test_q0_is_min_even_below_lo(self):
        h = Histogram(10.0, 100.0, bins=10)
        h.extend([3.0, 55.0])
        assert h.percentile(0) == 3.0

    def test_overflow_samples_reach_the_scan(self):
        # 1 in-range sample, 9 overflow: the median sits in the overflow
        # bucket and must report within [hi, max], not an interior bin.
        h = Histogram(0.0, 10.0, bins=10)
        h.add(5.0)
        h.extend([100.0] * 9)
        p50 = h.percentile(50)
        assert 10.0 <= p50 <= 100.0

    def test_all_overflow_median(self):
        h = Histogram(0.0, 10.0, bins=4)
        h.extend([20.0, 30.0, 40.0])
        assert h.percentile(50) == (10.0 + 40.0) / 2.0

    def test_monotone_across_overflow_boundary(self):
        h = Histogram(0.0, 10.0, bins=10)
        h.extend([1.0, 2.0, 3.0, 50.0, 60.0])
        qs = [0, 10, 25, 50, 75, 90, 100]
        ps = [h.percentile(q) for q in qs]
        assert ps == sorted(ps)

    def test_overflow_only_population_every_quantile(self):
        # Every sample lands past hi: interior quantiles must all report
        # the [hi, max] midpoint (the only interval the bucket spans),
        # with q=0/q=100 still anchored at the exact min/max.
        h = Histogram(0.0, 10.0, bins=8)
        h.extend([15.0, 25.0, 95.0])
        assert h.percentile(0) == 15.0
        assert h.percentile(100) == 95.0
        for q in (1, 25, 50, 75, 99):
            assert h.percentile(q) == (10.0 + 95.0) / 2.0

    def test_single_overflow_sample(self):
        h = Histogram(0.0, 10.0, bins=4)
        h.add(42.0)
        assert h.percentile(50) == (10.0 + 42.0) / 2.0
        assert h.percentile(0) == h.percentile(100) == 42.0


class TestOutstandingCounter:
    """StatsCollector.outstanding is maintained incrementally and must
    track the O(total-history) scan exactly."""

    def _record(self, msg_id, delivered=-1):
        return MessageRecord(msg_id=msg_id, src=0, dst=1, length=4,
                             created=0, delivered=delivered)

    def test_new_message_increments(self):
        s = StatsCollector()
        s.new_message(self._record(0))
        s.new_message(self._record(1))
        assert s.outstanding == 2

    def test_mark_delivered_decrements_once(self):
        s = StatsCollector()
        s.new_message(self._record(0))
        s.mark_delivered(0, 10)
        s.mark_delivered(0, 12)  # idempotent on the counter
        assert s.outstanding == 0
        assert s.messages[0].delivered == 12

    def test_predelivered_record_not_counted(self):
        s = StatsCollector()
        s.new_message(self._record(0, delivered=5))
        assert s.outstanding == 0

    def test_matches_scan(self):
        s = StatsCollector()
        for i in range(10):
            s.new_message(self._record(i))
        for i in range(0, 10, 2):
            s.mark_delivered(i, 100 + i)
        assert s.outstanding == len(s.undelivered_records()) == 5

    def test_reregistration_does_not_double_count(self):
        # Regression: the reliability retransmit path re-injects the same
        # msg_id; registering it again must not bump outstanding twice.
        s = StatsCollector()
        first = s.new_message(self._record(7))
        again = s.new_message(self._record(7))
        assert again is first  # original record kept, not replaced
        assert s.outstanding == 1
        s.mark_delivered(7, 50)
        assert s.outstanding == 0

    def test_retransmit_then_delivery_leaves_zero_outstanding(self):
        """End-to-end regression: a retransmitted-then-delivered message
        must drain ``outstanding`` to exactly zero."""
        from repro.network.message import MessageFactory
        from repro.network.network import Network
        from repro.sim.config import NetworkConfig, ReliabilityConfig
        from repro.topology import FaultSchedule, build_topology

        topo = build_topology("mesh", (4, 4))
        sched = FaultSchedule(topo)
        # DOR 0->3 crosses link 1-2; kill it mid-worm, heal it later so
        # the retransmitted copy gets through.
        port = next(
            p for p in topo.connected_ports(1) if topo.neighbor(1, p) == 2
        )
        sched.schedule_kill(6, 1, port)
        sched.schedule_heal(200, 1, port)
        config = NetworkConfig(
            dims=(4, 4), protocol="wormhole", wave=None,
            reliability=ReliabilityConfig(
                timeout=64, backoff=2, max_timeout=256, max_retries=4
            ),
        )
        net = Network(config, faults=sched)
        net.inject(MessageFactory().make(0, 3, 32, 0))
        for _ in range(30_000):
            net.step()
            if net.is_idle() and not net.recovery_pending():
                break
        assert net.stats.counters["reliability.retransmits"] >= 1
        assert len(net.stats.delivered_records()) == 1
        assert net.stats.outstanding == 0
