"""Tests for counters, histograms, time series and message records."""

import math

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.sim.config import SwitchingMode
from repro.sim.stats import Histogram, MessageRecord, StatsCollector, TimeSeries


class TestMessageRecord:
    def test_latency_undelivered_is_minus_one(self):
        rec = MessageRecord(msg_id=1, src=0, dst=5, length=16, created=10)
        assert rec.latency == -1
        assert rec.network_latency == -1

    def test_latency_computed_from_created(self):
        rec = MessageRecord(
            msg_id=1, src=0, dst=5, length=16, created=10, injected=12, delivered=50
        )
        assert rec.latency == 40
        assert rec.network_latency == 38


class TestHistogram:
    def test_rejects_bad_range(self):
        with pytest.raises(ValueError):
            Histogram(5.0, 5.0)

    def test_rejects_zero_bins(self):
        with pytest.raises(ValueError):
            Histogram(0.0, 1.0, bins=0)

    def test_mean_min_max(self):
        h = Histogram(0, 100, 10)
        h.extend([10, 20, 30])
        assert h.mean == pytest.approx(20.0)
        assert h.min == 10
        assert h.max == 30
        assert h.n == 3

    def test_overflow_underflow_buckets(self):
        h = Histogram(0, 10, 5)
        h.extend([-1, 5, 100])
        assert h.underflow == 1
        assert h.overflow == 1
        assert sum(h.counts) == 1

    def test_empty_mean_is_nan(self):
        h = Histogram(0, 10)
        assert math.isnan(h.mean)
        assert math.isnan(h.percentile(50))

    def test_percentile_monotone(self):
        h = Histogram(0, 100, 100)
        h.extend(range(100))
        p50 = h.percentile(50)
        p90 = h.percentile(90)
        assert p50 <= p90
        assert 40 <= p50 <= 60
        assert 80 <= p90 <= 100

    def test_percentile_range_check(self):
        h = Histogram(0, 10)
        with pytest.raises(ValueError):
            h.percentile(101)

    def test_stddev_of_constant_is_zero(self):
        h = Histogram(0, 10)
        h.extend([5.0] * 50)
        assert h.stddev == pytest.approx(0.0, abs=1e-9)

    @given(st.lists(st.floats(min_value=0, max_value=999), min_size=1, max_size=200))
    def test_mean_matches_reference(self, values):
        h = Histogram(0, 1000, 32)
        h.extend(values)
        assert h.mean == pytest.approx(sum(values) / len(values))
        assert h.min == pytest.approx(min(values))
        assert h.max == pytest.approx(max(values))

    @given(st.lists(st.floats(min_value=-100, max_value=2000), min_size=1))
    def test_counts_partition_samples(self, values):
        h = Histogram(0, 1000, 16)
        h.extend(values)
        assert h.underflow + h.overflow + sum(h.counts) == len(values)


class TestTimeSeries:
    def test_record_and_mean_after(self):
        ts = TimeSeries("throughput")
        ts.record(0, 1.0)
        ts.record(100, 3.0)
        ts.record(200, 5.0)
        assert ts.mean_after(100) == pytest.approx(4.0)
        assert len(ts) == 3

    def test_mean_after_no_samples_is_nan(self):
        ts = TimeSeries("x")
        ts.record(0, 1.0)
        assert math.isnan(ts.mean_after(10))


class TestStatsCollector:
    def _mk(self, msg_id, delivered, length=8, created=0, mode=None):
        return MessageRecord(
            msg_id=msg_id,
            src=0,
            dst=1,
            length=length,
            created=created,
            injected=created,
            delivered=delivered,
            mode=mode,
        )

    def test_bump_and_count(self):
        s = StatsCollector()
        s.bump("probe.backtracks")
        s.bump("probe.backtracks", 2)
        assert s.count("probe.backtracks") == 3
        assert s.count("missing") == 0

    def test_delivered_undelivered_split(self):
        s = StatsCollector()
        s.new_message(self._mk(1, delivered=10))
        s.new_message(self._mk(2, delivered=-1))
        assert len(s.delivered_records()) == 1
        assert len(s.undelivered_records()) == 1

    def test_mean_latency(self):
        s = StatsCollector()
        s.new_message(self._mk(1, delivered=10, created=0))
        s.new_message(self._mk(2, delivered=30, created=10))
        assert s.mean_latency() == pytest.approx(15.0)

    def test_mean_latency_empty_is_nan(self):
        assert math.isnan(StatsCollector().mean_latency())

    def test_throughput_window(self):
        s = StatsCollector()
        s.new_message(self._mk(1, delivered=10, length=20))
        s.new_message(self._mk(2, delivered=90, length=20))
        s.new_message(self._mk(3, delivered=150, length=20))  # outside window
        assert s.throughput_flits_per_cycle(0, 100) == pytest.approx(0.4)

    def test_throughput_bad_window_nan(self):
        assert math.isnan(StatsCollector().throughput_flits_per_cycle(10, 10))

    def test_mode_breakdown(self):
        s = StatsCollector()
        s.new_message(self._mk(1, 10, mode=SwitchingMode.CIRCUIT_HIT))
        s.new_message(self._mk(2, 10, mode=SwitchingMode.CIRCUIT_HIT))
        s.new_message(self._mk(3, 10, mode=SwitchingMode.WORMHOLE_FALLBACK))
        assert s.mode_breakdown() == {"circuit_hit": 2, "wormhole_fallback": 1}

    def test_latency_histogram_covers_all(self):
        s = StatsCollector()
        for i in range(5):
            s.new_message(self._mk(i, delivered=10 * (i + 1)))
        h = s.latency_histogram()
        assert h.n == 5

    def test_series_cached_by_name(self):
        s = StatsCollector()
        assert s.get_series("tp") is s.get_series("tp")
