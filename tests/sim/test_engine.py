"""Unit tests for the Simulator run loop, using a stub network."""

import pytest

from repro.errors import LivelockError, SimulationError
from repro.sim.engine import Simulator
from repro.sim.stats import StatsCollector


class StubConfig:
    def describe(self):
        return "stub machine"


class StubItem:
    def __init__(self, created):
        self.created = created


class StubNetwork:
    """Minimal duck-typed network: counts injections, drains after a lag."""

    def __init__(self, drain_lag=3, work_every=1):
        self.cycle = 0
        self.work_counter = 0
        self.stats = StatsCollector()
        self.config = StubConfig()
        self.injected = []
        self.drain_lag = drain_lag
        self.work_every = work_every
        self._outstanding = 0
        self.deadlock_checks = 0

    def inject(self, item):
        self.injected.append((item, self.cycle))
        self._outstanding += self.drain_lag

    def step(self):
        self.cycle += 1
        if self._outstanding > 0:
            self._outstanding -= 1
            if self.cycle % self.work_every == 0:
                self.work_counter += 1

    def is_idle(self):
        return self._outstanding == 0

    def outstanding_messages(self):
        return self._outstanding

    def check_deadlock(self):
        self.deadlock_checks += 1


class TestWorkloadPump:
    def test_items_injected_at_their_creation_cycle(self):
        net = StubNetwork()
        items = [StubItem(0), StubItem(5), StubItem(5), StubItem(9)]
        Simulator(net, items).run(50)
        times = [cycle for _item, cycle in net.injected]
        assert times == [0, 5, 5, 9]

    def test_unsorted_future_item_not_lost(self):
        net = StubNetwork()
        items = [StubItem(3)]
        sim = Simulator(net, items)
        sim.run(1)  # deadline before the item is due
        assert net.injected == []
        sim.run(50)
        assert len(net.injected) == 1

    def test_empty_workload_completes_immediately(self):
        net = StubNetwork()
        result = Simulator(net, []).run(100)
        assert result.completed
        assert net.cycle == 0  # nothing to do, no cycles burned


class TestStoppingConditions:
    def test_stops_when_drained(self):
        net = StubNetwork(drain_lag=4)
        result = Simulator(net, [StubItem(0)]).run(1000)
        assert result.completed
        assert net.cycle < 20

    def test_deadline_cuts_off(self):
        net = StubNetwork(drain_lag=100)
        result = Simulator(net, [StubItem(0)]).run(10)
        assert not result.completed
        assert net.cycle == 10

    def test_resume_after_deadline(self):
        net = StubNetwork(drain_lag=30)
        sim = Simulator(net, [StubItem(0)])
        assert not sim.run(10).completed
        assert sim.run(1000).completed

    def test_rerun_after_completion_rejected(self):
        net = StubNetwork()
        sim = Simulator(net, [])
        sim.run(5)
        with pytest.raises(SimulationError):
            sim.run(5)

    def test_negative_deadline_rejected(self):
        with pytest.raises(SimulationError):
            Simulator(StubNetwork(), []).run(-1)


class TestMonitors:
    def test_deadlock_check_interval(self):
        net = StubNetwork(drain_lag=50)
        Simulator(net, [StubItem(0)], deadlock_check_interval=10).run(50)
        assert net.deadlock_checks == 5

    def test_progress_timeout_fires_on_stall(self):
        net = StubNetwork(drain_lag=1000, work_every=10**9)  # never works
        sim = Simulator(net, [StubItem(0)], progress_timeout=20)
        with pytest.raises(LivelockError):
            sim.run(100)

    def test_progress_timeout_tolerates_slow_work(self):
        net = StubNetwork(drain_lag=60, work_every=5)  # works every 5 cycles
        sim = Simulator(net, [StubItem(0)], progress_timeout=20)
        result = sim.run(1000)
        assert result.completed

    def test_on_cycle_callback_sees_every_cycle(self):
        seen = []
        net = StubNetwork(drain_lag=5)
        Simulator(net, [StubItem(0)],
                  on_cycle=lambda n: seen.append(n.cycle)).run(100)
        assert seen == list(range(1, net.cycle + 1))


class TestResultShape:
    def test_summary_mentions_state(self):
        net = StubNetwork()
        result = Simulator(net, []).run(5)
        assert "drained" in result.summary()
        assert result.config_summary == "stub machine"

    def test_undelivered_property(self):
        net = StubNetwork()
        result = Simulator(net, []).run(5)
        assert result.undelivered == result.injected - result.delivered
