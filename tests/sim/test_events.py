"""Tests for protocol event tracing."""

import pytest

from repro.network.message import MessageFactory
from repro.network.network import Network
from repro.sim.config import NetworkConfig, WaveConfig
from repro.sim.events import Event, EventKind, EventLog


def traced_net(**wave_kwargs):
    config = NetworkConfig(
        dims=(4, 4), protocol="clrp", wave=WaveConfig(**wave_kwargs)
    )
    net = Network(config)
    log = EventLog()
    net.attach_event_log(log)
    return net, MessageFactory(), log


def drain(net, limit=30_000):
    for _ in range(limit):
        net.step()
        if net.is_idle():
            return
    raise AssertionError("network did not drain")


class TestEventLogBasics:
    def test_emit_and_query(self):
        log = EventLog()
        log.emit(5, EventKind.PROBE_HOP, 1, 7, port=2)
        log.emit(9, EventKind.TEARDOWN_START, 1, 3)
        assert len(log) == 2
        assert log.of_kind(EventKind.PROBE_HOP)[0].detail["port"] == 2
        assert log.between(0, 6)[0].kind is EventKind.PROBE_HOP

    def test_capacity_drops_overflow(self):
        log = EventLog(capacity=2)
        for i in range(5):
            log.emit(i, EventKind.PROBE_HOP, 0, i)
        assert len(log) == 2
        assert log.dropped == 3

    def test_render_lines(self):
        log = EventLog()
        log.emit(5, EventKind.PROBE_HOP, 1, 7, port=2)
        text = log.render()
        assert "probe_hop" in text
        assert "port=2" in text


class TestTracedLifecycle:
    def test_full_circuit_story(self):
        net, factory, log = traced_net()
        net.inject(factory.make(0, 9, 32, 0))
        drain(net)
        kinds = [e.kind for e in log]
        # The canonical successful-setup sequence, in order:
        assert kinds.index(EventKind.PROBE_LAUNCH) < kinds.index(
            EventKind.PROBE_HOP
        )
        assert kinds.index(EventKind.PROBE_HOP) < kinds.index(
            EventKind.CIRCUIT_RESERVED
        )
        assert kinds.index(EventKind.CIRCUIT_RESERVED) < kinds.index(
            EventKind.CIRCUIT_ESTABLISHED
        )
        assert kinds.index(EventKind.CIRCUIT_ESTABLISHED) < kinds.index(
            EventKind.TRANSFER_START
        )
        assert EventKind.TRANSFER_COMPLETE in kinds

    def test_probe_hops_match_path_length(self):
        net, factory, log = traced_net()
        net.inject(factory.make(0, 15, 16, 0))
        drain(net)
        circuit = net.plane.table.established()[0]
        hops = log.of_kind(EventKind.PROBE_HOP)
        assert len(hops) == circuit.length

    def test_for_circuit_collects_whole_story(self):
        net, factory, log = traced_net()
        net.inject(factory.make(0, 9, 32, 0))
        drain(net)
        circuit = net.plane.table.established()[0]
        story = log.for_circuit(circuit.circuit_id)
        kinds = {e.kind for e in story}
        assert EventKind.PROBE_LAUNCH in kinds
        assert EventKind.CIRCUIT_ESTABLISHED in kinds
        assert EventKind.TRANSFER_START in kinds

    def test_forced_steal_leaves_trace(self):
        net, factory, log = traced_net(num_switches=1, misroute_budget=0)
        # Occupy, then steal from a node on the path.
        net.inject(factory.make(0, 3, 16, 0))
        drain(net)
        net.inject(factory.make(1, 3, 16, net.cycle))
        drain(net)
        kinds = [e.kind for e in log]
        assert EventKind.PHASE_CHANGE in kinds
        assert EventKind.RELEASE_REQUESTED in kinds
        assert EventKind.TEARDOWN_START in kinds
        assert EventKind.CIRCUIT_RELEASED in kinds

    def test_eviction_traced(self):
        net, factory, log = traced_net(circuit_cache_size=1)
        net.inject(factory.make(0, 5, 16, 0))
        drain(net)
        net.inject(factory.make(0, 9, 16, net.cycle))
        drain(net)
        evicts = log.of_kind(EventKind.CACHE_EVICT)
        assert len(evicts) == 1
        assert evicts[0].subject == 5  # the victim's destination
        assert evicts[0].detail["for_dest"] == 9

    def test_buffer_realloc_traced(self):
        net, factory, log = traced_net(model_buffers=True,
                                       default_buffer_flits=16,
                                       buffer_realloc_penalty=10)
        net.inject(factory.make(0, 5, 8, 0))
        drain(net)
        net.inject(factory.make(0, 5, 64, net.cycle))
        drain(net)
        reallocs = log.of_kind(EventKind.BUFFER_REALLOC)
        assert len(reallocs) == 1
        assert reallocs[0].detail["flits"] == 64

    def test_no_log_attached_costs_nothing(self):
        config = NetworkConfig(dims=(4, 4), protocol="clrp")
        net = Network(config)
        factory = MessageFactory()
        net.inject(factory.make(0, 5, 16, 0))
        drain(net)
        assert net.plane.log is None  # nothing attached, nothing crashed
