"""Tests for the named-stream deterministic RNG."""

from repro.sim.rng import SimRandom


class TestSimRandom:
    def test_same_seed_same_sequence(self):
        a = SimRandom(7).stream("traffic")
        b = SimRandom(7).stream("traffic")
        assert [a.random() for _ in range(20)] == [b.random() for _ in range(20)]

    def test_different_seeds_differ(self):
        a = SimRandom(1).stream("traffic")
        b = SimRandom(2).stream("traffic")
        assert [a.random() for _ in range(5)] != [b.random() for _ in range(5)]

    def test_streams_independent(self):
        """Draws on one stream must not perturb another."""
        clean = SimRandom(9)
        expected = [clean.stream("traffic").random() for _ in range(10)]

        noisy = SimRandom(9)
        noisy.stream("arbiter").random()  # extra draw on a different stream
        got = []
        for i in range(10):
            if i == 5:
                noisy.stream("arbiter").random()  # interleaved draw
            got.append(noisy.stream("traffic").random())
        assert got == expected

    def test_stream_is_cached(self):
        rng = SimRandom(3)
        assert rng.stream("x") is rng.stream("x")

    def test_different_names_different_sequences(self):
        rng = SimRandom(3)
        a = [rng.stream("a").random() for _ in range(5)]
        b = [rng.stream("b").random() for _ in range(5)]
        assert a != b

    def test_fork_is_deterministic(self):
        a = SimRandom(5).fork("child").stream("s")
        b = SimRandom(5).fork("child").stream("s")
        assert a.random() == b.random()

    def test_fork_differs_from_parent(self):
        parent = SimRandom(5)
        child = parent.fork("child")
        assert parent.stream("s").random() != child.stream("s").random()

    def test_convenience_passthroughs(self):
        rng = SimRandom(11)
        assert 0 <= rng.random() < 1
        assert 1 <= rng.randint(1, 3) <= 3
        assert rng.choice(["a", "b"]) in ("a", "b")
        xs = [1, 2, 3, 4, 5]
        rng.shuffle(xs)
        assert sorted(xs) == [1, 2, 3, 4, 5]
