"""Livelock monitor vs idle gaps, sliced runs and fast-forward.

The progress monitor shares its ``_last_progress_cycle`` /
``_last_work_counter`` markers across ``run()`` slices.  Before the
active-set rework these markers were only refreshed by *work*, so a long
idle gap (no work by definition) left them pointing at the pre-gap era
and the first cycle of post-gap traffic -- whose probe or injection only
becomes ready the *next* cycle -- tripped a spurious LivelockError.
These tests pin the fix: idle cycles count as progress, a genuine stall
still fires, and the timeout window is measured from the end of the gap
(also after a fast-forward jump, which resets the markers explicitly).
"""

import pytest

from repro.errors import LivelockError
from repro.sim.engine import Simulator

from tests.sim.test_engine import StubItem, StubNetwork


class TestIdleGaps:
    def test_idle_gap_longer_than_timeout_does_not_fire(self):
        # Work resumes 3 cycles *after* the post-gap injection (work_every),
        # exactly the window where the stale marker used to fire.
        net = StubNetwork(drain_lag=30, work_every=3)
        items = [StubItem(0), StubItem(500)]
        sim = Simulator(net, items, progress_timeout=50, fast_forward=False)
        result = sim.run(5000)
        assert result.completed

    def test_idle_gap_across_run_slices_does_not_fire(self):
        net = StubNetwork(drain_lag=30, work_every=3)
        items = [StubItem(0), StubItem(500)]
        sim = Simulator(net, items, progress_timeout=50, fast_forward=False)
        # Slice boundaries land inside the idle gap on purpose.
        assert not sim.run(100).completed
        assert not sim.run(100).completed
        assert sim.run(5000).completed

    def test_gap_after_fast_forward_does_not_fire(self):
        net = StubNetwork(drain_lag=30, work_every=3)
        items = [StubItem(0), StubItem(500)]
        sim = Simulator(net, items, progress_timeout=50)
        assert sim.run(5000).completed

    def test_real_stall_after_gap_still_fires(self):
        # The second item never performs work: the monitor must fire, and
        # with a timeout window measured from the gap's end (cycle 500),
        # not from the pre-gap era and not never.
        net = StubNetwork(drain_lag=10_000, work_every=10**9)
        items = [StubItem(0), StubItem(500)]
        # Give the first item a finite drain so the network goes idle.
        net.inject = _finite_first_inject(net)
        sim = Simulator(net, items, progress_timeout=50)
        with pytest.raises(LivelockError):
            sim.run(5000)
        assert 500 + 50 <= net.cycle <= 500 + 50 + 5

    def test_real_stall_without_gap_still_fires(self):
        net = StubNetwork(drain_lag=1000, work_every=10**9)
        sim = Simulator(net, [StubItem(0)], progress_timeout=20)
        with pytest.raises(LivelockError):
            sim.run(100)


def _finite_first_inject(net):
    """First injection drains in 5 cycles, later ones never."""
    calls = []
    original = StubNetwork.inject

    def inject(item):
        net.drain_lag = 5 if not calls else 10_000
        calls.append(item)
        original(net, item)

    return inject


class TestFastForward:
    def _counted(self, **sim_kwargs):
        net = StubNetwork(drain_lag=5)
        steps = []
        original = net.step

        def stepper():
            steps.append(net.cycle)
            original()

        net.step = stepper
        sim = Simulator(net, [StubItem(0), StubItem(1000)], **sim_kwargs)
        result = sim.run(5000)
        assert result.completed
        return net, steps

    def test_jumps_over_idle_gap(self):
        net, steps = self._counted()
        # Two drain periods of 5 cycles each; the ~995-cycle gap is skipped.
        assert len(steps) <= 15
        assert net.cycle >= 1000

    def test_disabled_flag_steps_every_cycle(self):
        _net, steps = self._counted(fast_forward=False)
        assert len(steps) >= 1000

    def test_on_cycle_callback_disables_fast_forward(self):
        seen = []
        net, steps = self._counted(on_cycle=lambda n: seen.append(n.cycle))
        assert len(steps) >= 1000
        assert seen == list(range(1, net.cycle + 1))

    def test_jump_capped_at_deadline(self):
        net = StubNetwork(drain_lag=0)
        sim = Simulator(net, [StubItem(300)])
        assert not sim.run(100).completed
        assert net.cycle == 100  # parked at the deadline, not at 300
        assert sim.run(5000).completed
        assert net.injected[0][1] == 300
