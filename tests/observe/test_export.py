"""Tests for the Chrome trace-event / Perfetto exporter and JSONL dump."""

import json

import pytest

from repro.network.message import MessageFactory
from repro.network.network import Network
from repro.observe import (
    MetricRegistry,
    NetworkSampler,
    Tracer,
    chrome_trace,
    read_metrics_jsonl,
    validate_chrome_trace,
    write_chrome_trace,
    write_metrics_jsonl,
)
from repro.sim.config import NetworkConfig, WaveConfig
from repro.sim.engine import Simulator
from repro.sim.events import EventKind
from repro.sim.rng import SimRandom
from repro.traffic import UniformPattern, uniform_workload


def traced_run(protocol="clrp", sample_every=0):
    config = NetworkConfig(
        dims=(4, 4),
        protocol=protocol,
        wave=None if protocol == "wormhole" else WaveConfig(),
    )
    net = Network(config)
    tracer = Tracer()
    net.attach_event_log(tracer)
    sampler = (
        NetworkSampler(net, sample_every) if sample_every else None
    )
    workload = uniform_workload(
        MessageFactory(),
        UniformPattern(16),
        num_nodes=16,
        offered_load=0.2,
        length=32,
        duration=1200,
        rng=SimRandom(5),
    )
    Simulator(net, workload, sampler=sampler).run(60_000)
    registry = sampler.registry if sampler else None
    return net, tracer, registry


class TestChromeTrace:
    def test_trace_validates_and_serializes(self):
        _, tracer, _ = traced_run("clrp")
        obj = chrome_trace(tracer)  # validates internally
        json.dumps(obj)  # and is pure JSON
        assert obj["traceEvents"]

    def test_router_tracks_named(self):
        _, tracer, _ = traced_run("clrp")
        obj = chrome_trace(tracer)
        names = {
            ev["args"]["name"]: ev["tid"]
            for ev in obj["traceEvents"]
            if ev["ph"] == "M" and ev["name"] == "thread_name"
        }
        assert names  # one track per emitting router
        for label, tid in names.items():
            assert label == f"router {tid}"

    def test_circuit_slices_cover_lifetime(self):
        _, tracer, _ = traced_run("clrp")
        obj = chrome_trace(tracer)
        slices = [
            ev for ev in obj["traceEvents"]
            if ev["ph"] == "X" and ev["name"].startswith("circuit c")
        ]
        established = tracer.of_kind(EventKind.CIRCUIT_ESTABLISHED)
        assert len(slices) == len(established)
        for ev in slices:
            assert ev["dur"] >= 0

    def test_flow_links_probe_hops_to_circuit(self):
        _, tracer, _ = traced_run("clrp")
        obj = chrome_trace(tracer)
        starts = {
            ev["id"] for ev in obj["traceEvents"] if ev["ph"] == "s"
        }
        finishes = {
            ev["id"] for ev in obj["traceEvents"] if ev["ph"] == "f"
        }
        assert starts
        # Every flow finish (establishment) traces back to a start
        # (probe launch) with the same circuit id.
        assert finishes <= starts

    def test_wormhole_advances_present(self):
        _, tracer, _ = traced_run("wormhole")
        obj = chrome_trace(tracer)
        advance = [
            ev for ev in obj["traceEvents"]
            if ev["ph"] == "i" and ev["cat"] == "wormhole"
        ]
        assert advance
        for ev in advance:
            assert ev["s"] == "t"

    def test_counter_events_from_registry(self):
        _, tracer, registry = traced_run("clrp", sample_every=100)
        obj = chrome_trace(tracer, registry=registry)
        counters = [ev for ev in obj["traceEvents"] if ev["ph"] == "C"]
        assert counters
        series_names = {ev["name"] for ev in counters}
        assert "messages.outstanding" in series_names

    def test_write_round_trip(self, tmp_path):
        _, tracer, _ = traced_run("clrp")
        path = tmp_path / "trace.json"
        count = write_chrome_trace(path, tracer)
        loaded = json.loads(path.read_text())
        validate_chrome_trace(loaded)
        assert len(loaded["traceEvents"]) == count


class TestValidator:
    def _minimal(self):
        return {
            "traceEvents": [
                {"name": "process_name", "ph": "M", "pid": 0, "tid": 0,
                 "args": {"name": "x"}},
                {"name": "e", "cat": "c", "ph": "i", "ts": 1, "pid": 0,
                 "tid": 0, "s": "t"},
            ]
        }

    def test_accepts_minimal(self):
        validate_chrome_trace(self._minimal())

    def test_rejects_non_object(self):
        with pytest.raises(ValueError, match="JSON object"):
            validate_chrome_trace([])

    def test_rejects_missing_events_list(self):
        with pytest.raises(ValueError, match="traceEvents"):
            validate_chrome_trace({"foo": 1})

    def test_rejects_unknown_phase(self):
        obj = self._minimal()
        obj["traceEvents"][1]["ph"] = "Z"
        with pytest.raises(ValueError, match="unknown phase"):
            validate_chrome_trace(obj)

    def test_rejects_negative_ts(self):
        obj = self._minimal()
        obj["traceEvents"][1]["ts"] = -4
        with pytest.raises(ValueError, match="ts"):
            validate_chrome_trace(obj)

    def test_rejects_complete_event_without_dur(self):
        obj = self._minimal()
        obj["traceEvents"].append(
            {"name": "slice", "ph": "X", "ts": 0, "pid": 0, "tid": 0}
        )
        with pytest.raises(ValueError, match="dur"):
            validate_chrome_trace(obj)

    def test_rejects_flow_without_id(self):
        obj = self._minimal()
        obj["traceEvents"].append(
            {"name": "flow", "ph": "s", "ts": 0, "pid": 0, "tid": 0}
        )
        with pytest.raises(ValueError, match="id"):
            validate_chrome_trace(obj)

    def test_rejects_instant_without_scope(self):
        obj = self._minimal()
        del obj["traceEvents"][1]["s"]
        with pytest.raises(ValueError, match="scope"):
            validate_chrome_trace(obj)


class TestMetricsJsonl:
    def test_round_trip(self, tmp_path):
        reg = MetricRegistry()
        reg.record("a", 10, 1.0)
        reg.record("a", 20, 2.0)
        reg.record("b", 10, -3.5)
        path = tmp_path / "metrics.jsonl"
        lines = write_metrics_jsonl(path, reg)
        assert lines == 3
        back = read_metrics_jsonl(path)
        assert set(back.series) == {"a", "b"}
        assert back.series["a"].times == [10, 20]
        assert back.series["a"].values == [1.0, 2.0]
        assert back.series["b"].values == [-3.5]

    def test_lines_are_self_describing_json(self, tmp_path):
        reg = MetricRegistry()
        reg.record("x", 5, 0.25)
        path = tmp_path / "m.jsonl"
        write_metrics_jsonl(path, reg)
        [line] = path.read_text().strip().splitlines()
        row = json.loads(line)
        assert row == {"series": "x", "cycle": 5, "value": 0.25}

    def test_sampled_run_dumps_everything(self, tmp_path):
        _, _, registry = traced_run("clrp", sample_every=200)
        path = tmp_path / "run.jsonl"
        lines = write_metrics_jsonl(path, registry)
        assert lines == sum(
            len(ts.values) for ts in registry.series.values()
        )
