"""Tests for the metric registry and cadence sampler."""

import math

import pytest

from repro.network.message import MessageFactory
from repro.network.network import Network
from repro.observe import MetricRegistry, NetworkSampler
from repro.sim.config import NetworkConfig, WaveConfig
from repro.sim.engine import Simulator
from repro.sim.rng import SimRandom
from repro.traffic import UniformPattern, uniform_workload


def build_network(protocol="wormhole"):
    config = NetworkConfig(
        dims=(4, 4),
        protocol=protocol,
        wave=None if protocol == "wormhole" else WaveConfig(),
    )
    return Network(config)


def build_workload(load=0.2, duration=1500, seed=3):
    return uniform_workload(
        MessageFactory(),
        UniformPattern(16),
        num_nodes=16,
        offered_load=load,
        length=32,
        duration=duration,
        rng=SimRandom(seed),
    )


class TestMetricRegistry:
    def test_series_for_creates_once(self):
        reg = MetricRegistry()
        a = reg.series_for("x")
        b = reg.series_for("x")
        assert a is b
        assert len(reg) == 1

    def test_record_appends(self):
        reg = MetricRegistry()
        reg.record("lat", 10, 1.5)
        reg.record("lat", 20, 2.5)
        ts = reg.series["lat"]
        assert ts.times == [10, 20]
        assert ts.values == [1.5, 2.5]

    def test_summary_statistics(self):
        reg = MetricRegistry()
        for cycle, value in [(1, 1.0), (2, 3.0), (3, 2.0)]:
            reg.record("m", cycle, value)
        s = reg.summary()["m"]
        assert s["n"] == 3
        assert s["mean"] == pytest.approx(2.0)
        assert s["max"] == 3.0
        assert s["last"] == 2.0

    def test_summary_empty_series_is_nan(self):
        reg = MetricRegistry()
        reg.series_for("empty")
        s = reg.summary()["empty"]
        assert s["n"] == 0
        assert math.isnan(s["mean"])


class TestNetworkSampler:
    def test_rejects_nonpositive_cadence(self):
        net = build_network()
        with pytest.raises(ValueError):
            NetworkSampler(net, 0)

    def test_cadence_respected(self):
        net = build_network()
        sampler = NetworkSampler(net, every=100)
        Simulator(net, build_workload(), sampler=sampler).run(5000)
        assert sampler.samples_taken >= 2
        for ts in sampler.registry.series.values():
            assert all(t % 100 == 0 for t in ts.times)

    def test_link_utilization_bounded(self):
        net = build_network()
        sampler = NetworkSampler(net, every=50)
        Simulator(net, build_workload(load=0.6), sampler=sampler).run(20_000)
        mean = sampler.registry.series["wormhole.link_util.mean"]
        peak = sampler.registry.series["wormhole.link_util.max"]
        assert mean.values and peak.values
        for m, p in zip(mean.values, peak.values):
            assert 0.0 <= m <= p <= 1.0 + 1e-9

    def test_counter_deltas_sum_to_totals(self):
        net = build_network()
        sampler = NetworkSampler(net, every=25)
        Simulator(net, build_workload(), sampler=sampler).run(20_000)
        series = sampler.registry.series.get("ctr.wormhole.flits_moved")
        assert series is not None
        # Deltas cover everything up to the final sample point.
        sampled_upto = series.times[-1]
        assert sum(series.values) <= net.stats.count("wormhole.flits_moved")
        assert sampled_upto <= net.cycle

    def test_per_link_series_opt_in(self):
        net = build_network()
        default = NetworkSampler(net, every=10)
        detailed = NetworkSampler(net, every=10, per_link=True)
        net.run(25)
        default.maybe_sample(net)
        detailed.maybe_sample(net)
        assert not any(
            name.startswith("link.") for name in default.registry.series
        )
        assert any(
            name.startswith("link.") for name in detailed.registry.series
        )

    def test_circuit_plane_instruments(self):
        net = build_network("clrp")
        sampler = NetworkSampler(net, every=50)
        Simulator(net, build_workload(), sampler=sampler).run(20_000)
        reg = sampler.registry
        assert "circuit.streamed_flits" in reg.series
        assert "plane.live_circuits" in reg.series
        streamed = sum(reg.series["circuit.streamed_flits"].values)
        total = sum(net.plane.streamed_by_channel.values())
        assert 0 < streamed <= total

    def test_fast_forward_lands_on_cadence(self):
        # Sparse traffic forces idle fast-forward; samples must still hit
        # exact cadence cycles.
        net = build_network()
        sampler = NetworkSampler(net, every=500)
        factory = MessageFactory()
        messages = [
            factory.make(0, 15, 16, 0),
            factory.make(15, 0, 16, 5000),
        ]
        Simulator(net, messages, sampler=sampler).run(50_000)
        assert net.cycle >= 5000  # fast-forward actually had a gap to jump
        for ts in sampler.registry.series.values():
            assert all(t % 500 == 0 for t in ts.times)

    def test_outstanding_gauge_drains_to_zero(self):
        net = build_network()
        sampler = NetworkSampler(net, every=100)
        Simulator(net, build_workload(duration=800), sampler=sampler).run(60_000)
        sampler.sample(net)  # final flush at the end cycle
        outstanding = sampler.registry.series["messages.outstanding"]
        assert outstanding.values[-1] == 0
