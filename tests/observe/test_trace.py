"""Tests for the bounded ring-buffer tracer."""

import pytest

from repro.network.message import MessageFactory
from repro.network.network import Network
from repro.observe import Tracer
from repro.sim.config import NetworkConfig, WaveConfig
from repro.sim.engine import Simulator
from repro.sim.events import EventKind, EventLog
from repro.sim.rng import SimRandom
from repro.traffic import UniformPattern, uniform_workload


def traced_run(protocol="clrp", limit=200_000, load=0.2, duration=1200):
    config = NetworkConfig(
        dims=(4, 4),
        protocol=protocol,
        wave=None if protocol == "wormhole" else WaveConfig(),
    )
    net = Network(config)
    tracer = Tracer(limit)
    net.attach_event_log(tracer)
    workload = uniform_workload(
        MessageFactory(),
        UniformPattern(16),
        num_nodes=16,
        offered_load=load,
        length=32,
        duration=duration,
        rng=SimRandom(11),
    )
    Simulator(net, workload).run(60_000)
    return net, tracer


class TestRingBuffer:
    def test_rejects_nonpositive_limit(self):
        with pytest.raises(ValueError):
            Tracer(0)
        with pytest.raises(ValueError):
            Tracer(-5)

    def test_under_capacity_drops_nothing(self):
        t = Tracer(10)
        for i in range(7):
            t.emit(i, EventKind.PROBE_HOP, 0, i)
        assert len(t) == 7
        assert t.emitted == 7
        assert t.dropped == 0

    def test_overflow_drops_oldest(self):
        t = Tracer(3)
        for i in range(8):
            t.emit(i, EventKind.PROBE_HOP, 0, i)
        assert len(t) == 3
        assert t.emitted == 8
        assert t.dropped == 5
        # The *newest* records are retained -- opposite of EventLog.
        assert [e.cycle for e in t] == [5, 6, 7]

    def test_eventlog_drops_newest_by_contrast(self):
        log = EventLog(capacity=3)
        for i in range(8):
            log.emit(i, EventKind.PROBE_HOP, 0, i)
        assert [e.cycle for e in log] == [0, 1, 2]

    def test_span_and_kind_counts(self):
        t = Tracer(100)
        t.emit(4, EventKind.PROBE_HOP, 0, 1)
        t.emit(9, EventKind.PROBE_HOP, 1, 1)
        t.emit(12, EventKind.CIRCUIT_ESTABLISHED, 0, 1)
        assert t.span() == (4, 12)
        assert t.kind_counts() == {
            "circuit_established": 1, "probe_hop": 2
        }

    def test_empty_summary(self):
        t = Tracer(5)
        assert t.span() == (0, 0)
        s = t.summary()
        assert s["emitted"] == 0 and s["retained"] == 0
        assert s["kinds"] == {}

    def test_summary_is_consistent(self):
        t = Tracer(4)
        for i in range(9):
            t.emit(i, EventKind.PROBE_HOP, 0, i)
        s = t.summary()
        assert s["emitted"] == 9
        assert s["retained"] == 4
        assert s["dropped"] == 5
        assert s["capacity"] == 4
        assert (s["first_cycle"], s["last_cycle"]) == (5, 8)


class TestQueryHelpers:
    """The inherited EventLog query helpers must work on the ring."""

    def test_of_kind_and_between(self):
        t = Tracer(100)
        t.emit(1, EventKind.PROBE_HOP, 0, 1)
        t.emit(2, EventKind.PROBE_BACKTRACK, 0, 1)
        t.emit(3, EventKind.PROBE_HOP, 0, 1)
        assert len(t.of_kind(EventKind.PROBE_HOP)) == 2
        assert len(t.between(2, 4)) == 2

    def test_for_circuit_follows_probe_details(self):
        t = Tracer(100)
        t.emit(1, EventKind.PROBE_LAUNCH, 0, 7, circuit=3)
        t.emit(2, EventKind.PROBE_HOP, 0, 7, circuit=3)
        t.emit(3, EventKind.CIRCUIT_ESTABLISHED, 0, 3)
        t.emit(3, EventKind.CIRCUIT_ESTABLISHED, 0, 4)
        story = t.for_circuit(3)
        assert [e.kind for e in story] == [
            EventKind.PROBE_LAUNCH, EventKind.PROBE_HOP,
            EventKind.CIRCUIT_ESTABLISHED,
        ]


class TestTracedSimulation:
    def test_clrp_run_records_protocol_story(self):
        net, tracer = traced_run("clrp")
        assert len(net.stats.delivered_records()) > 0
        kinds = tracer.kind_counts()
        assert kinds.get("probe_launch", 0) > 0
        assert kinds.get("probe_hop", 0) > 0
        assert kinds.get("circuit_established", 0) > 0
        assert kinds.get("transfer_complete", 0) > 0

    def test_wormhole_run_records_worm_advances(self):
        net, tracer = traced_run("wormhole")
        kinds = tracer.kind_counts()
        assert kinds.get("worm_head_advance", 0) > 0
        assert kinds.get("worm_tail_advance", 0) > 0
        # Every delivered worm's head crossed at least one link.
        heads = {
            e.subject for e in tracer.of_kind(EventKind.WORM_HEAD_ADVANCE)
        }
        delivered = {r.msg_id for r in net.stats.delivered_records()}
        # (ring may have dropped early records; sanity only when it didn't)
        if tracer.dropped == 0:
            assert delivered <= heads

    def test_tight_limit_keeps_newest_records(self):
        _, tracer = traced_run("clrp", limit=500)
        assert tracer.dropped > 0
        assert len(tracer) == 500
        first, last = tracer.span()
        assert last >= first > 0  # the retained window is the run's tail

    def test_tracing_disabled_emits_nothing(self):
        net, _ = traced_run("clrp")
        untraced = Network(
            NetworkConfig(dims=(4, 4), protocol="clrp", wave=WaveConfig())
        )
        assert untraced.log is None
        assert all(r.log is None for r in untraced.routers)
        assert all(ni.log is None for ni in untraced.interfaces)
