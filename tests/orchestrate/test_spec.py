"""JobSpec / WorkloadRecipe: content keys, serialisation, recipes."""

import pytest

from repro.errors import ConfigError
from repro.orchestrate import (
    JobSpec,
    WorkloadRecipe,
    build_workload,
    explicit_recipe,
    materialize_spec,
    recipe_from_dict,
)
from repro.sim.config import NetworkConfig, WaveConfig
from repro.topology import build_topology


def clrp_spec(load=0.1, seed=0, **kwargs) -> JobSpec:
    return JobSpec(
        config=NetworkConfig(dims=(4, 4), protocol="clrp", seed=seed),
        workload=WorkloadRecipe.make(
            "uniform", load=load, length=16, duration=300
        ),
        **kwargs,
    )


class TestRecipe:
    def test_param_order_is_canonical(self):
        a = WorkloadRecipe.make("uniform", load=0.1, length=16, duration=300)
        b = WorkloadRecipe.make("uniform", duration=300, length=16, load=0.1)
        assert a == b
        assert hash(a) == hash(b)

    def test_lists_frozen_to_tuples(self):
        recipe = WorkloadRecipe.make("pair_stream", pairs=[[0, 1], [2, 3]])
        assert recipe.param("pairs") == ((0, 1), (2, 3))
        assert recipe.as_dict()["pairs"] == [[0, 1], [2, 3]]

    def test_rejects_unserialisable_params(self):
        with pytest.raises(ConfigError):
            WorkloadRecipe.make("uniform", fn=lambda: None)

    def test_from_dict_round_trip(self):
        recipe = WorkloadRecipe.make("uniform", load=0.1, length=16)
        assert recipe_from_dict(recipe.as_dict()) == recipe

    def test_missing_required_param(self):
        spec = JobSpec(
            config=NetworkConfig(dims=(4, 4)),
            workload=WorkloadRecipe.make("uniform", load=0.1),
        )
        with pytest.raises(ConfigError, match="requires parameter"):
            build_workload(spec, build_topology("mesh", (4, 4)))


class TestSpecKey:
    def test_stable_for_equal_specs(self):
        assert clrp_spec().key() == clrp_spec().key()

    def test_differs_across_content(self):
        keys = {
            clrp_spec().key(),
            clrp_spec(load=0.2).key(),
            clrp_spec(seed=1).key(),
            clrp_spec(max_cycles=999).key(),
            clrp_spec(fault_fraction=0.1).key(),
        }
        assert len(keys) == 5

    def test_label_is_cosmetic(self):
        assert clrp_spec(label="a").key() == clrp_spec(label="b").key()

    def test_survives_json_round_trip(self):
        spec = clrp_spec(label="point")
        again = JobSpec.from_dict(spec.to_dict())
        assert again == spec
        assert again.key() == spec.key()

    def test_wave_none_round_trip(self):
        spec = JobSpec(
            config=NetworkConfig(dims=(4, 4), protocol="wormhole", wave=None),
            workload=WorkloadRecipe.make(
                "uniform", load=0.1, length=16, duration=300
            ),
        )
        again = JobSpec.from_dict(spec.to_dict())
        assert again.config.wave is None
        assert again.key() == spec.key()

    def test_wave_config_params_in_key(self):
        a = clrp_spec()
        b = JobSpec(
            config=NetworkConfig(
                dims=(4, 4), protocol="clrp", wave=WaveConfig(num_switches=3)
            ),
            workload=a.workload,
        )
        assert a.key() != b.key()


class TestServiceEnvelopeKeyStability:
    """Service metadata must never move a spec's content key.

    The job service (:mod:`repro.service`) hangs tenant / priority /
    submitted_at on the :class:`~repro.service.model.SubmittedJob`
    envelope, never on the JobSpec.  If any service-only field ever
    leaked into ``key()``, every stored result would silently stop
    being a cache hit -- so the key of a reference spec is pinned to a
    golden value here.
    """

    # Computed once from the spec below; a change means every existing
    # result store on disk is invalidated.  Do not update this constant
    # without a deliberate cache-migration plan.
    GOLDEN_KEY = "9adaae96ee63002ab51ed6754ecc3c4b"

    def golden_spec(self) -> JobSpec:
        return JobSpec(
            config=NetworkConfig(dims=(4, 4), protocol="clrp", seed=7),
            workload=WorkloadRecipe.make(
                "uniform", load=0.1, length=16, duration=300
            ),
        )

    def test_golden_key_is_pinned(self):
        assert self.golden_spec().key() == self.GOLDEN_KEY

    def test_envelope_fields_do_not_change_key(self):
        from repro.service.model import SubmittedJob

        spec = self.golden_spec()
        plain = SubmittedJob(spec=spec)
        dressed = SubmittedJob(
            spec=spec, tenant="alice", priority=99, campaign="urgent",
            campaign_id="c-9999", submitted_at=1234567890.0,
        )
        assert plain.key == dressed.key == self.GOLDEN_KEY

    def test_spec_dataclass_has_no_service_fields(self):
        """Envelope fields must not even exist on JobSpec, so they can
        never be serialised into the content hash by accident."""
        import dataclasses

        spec_fields = {f.name for f in dataclasses.fields(JobSpec)}
        assert spec_fields.isdisjoint({"tenant", "priority", "submitted_at"})

    def test_campaign_service_fields_are_not_spec_fields(self):
        from repro.orchestrate.campaign import _SPEC_FIELDS, SERVICE_FIELDS

        assert set(SERVICE_FIELDS).isdisjoint(_SPEC_FIELDS)

    def test_document_service_fields_do_not_change_keys(self):
        """The same campaign document with and without service fields
        expands to specs with identical content keys."""
        from repro.orchestrate.campaign import parse_campaign

        doc = {
            "name": "svc",
            "defaults": {
                "dims": "4x4", "protocol": "clrp", "seed": 7,
                "workload": {"kind": "uniform", "load": 0.1,
                             "length": 16, "duration": 300},
            },
            "grid": {"workload.load": [0.1, 0.2]},
        }
        _, plain = parse_campaign(doc)
        _, dressed = parse_campaign(
            {**doc, "tenant": "alice", "priority": 42}
        )
        assert [s.key() for s in plain] == [s.key() for s in dressed]


class TestSpecValidation:
    def test_bad_max_cycles(self):
        with pytest.raises(ConfigError):
            clrp_spec(max_cycles=0)

    def test_bad_fault_fraction(self):
        with pytest.raises(ConfigError):
            clrp_spec(fault_fraction=1.0)


class TestBuildWorkload:
    def test_uniform_deterministic(self):
        spec = clrp_spec()
        topo = build_topology("mesh", (4, 4))
        first = build_workload(spec, topo)
        second = build_workload(spec, topo)
        assert [
            (m.msg_id, m.src, m.dst, m.length, m.created) for m in first
        ] == [(m.msg_id, m.src, m.dst, m.length, m.created) for m in second]
        assert first, "tiny uniform workload should produce messages"

    def test_unknown_recipe_kind(self):
        spec = JobSpec(
            config=NetworkConfig(dims=(4, 4)),
            workload=WorkloadRecipe.make("no_such_kind"),
        )
        with pytest.raises(ConfigError, match="unknown workload recipe"):
            build_workload(spec, build_topology("mesh", (4, 4)))

    def test_explicit_rebuilds_bit_identical_messages(self):
        spec = clrp_spec()
        topo = build_topology("mesh", (4, 4))
        original = build_workload(spec, topo)
        explicit = materialize_spec(spec.config, original)
        rebuilt = build_workload(explicit, topo)
        assert [
            (m.msg_id, m.src, m.dst, m.length, m.created, m.circuit_hint)
            for m in rebuilt
        ] == [
            (m.msg_id, m.src, m.dst, m.length, m.created, m.circuit_hint)
            for m in original
        ]

    def test_explicit_survives_json_round_trip(self):
        spec = clrp_spec()
        topo = build_topology("mesh", (4, 4))
        explicit = materialize_spec(spec.config, build_workload(spec, topo))
        again = JobSpec.from_dict(explicit.to_dict())
        assert again.key() == explicit.key()
        assert [
            (m.msg_id, m.created) for m in build_workload(again, topo)
        ] == [(m.msg_id, m.created) for m in build_workload(explicit, topo)]

    def test_explicit_rejects_non_messages(self):
        with pytest.raises(ConfigError, match="plain messages"):
            explicit_recipe([object()])

    def test_stencil_recipe_builds(self):
        spec = JobSpec(
            config=NetworkConfig(dims=(4, 4)),
            workload=WorkloadRecipe.make(
                "stencil", phases=2, phase_gap=100, length=8
            ),
        )
        items = build_workload(spec, build_topology("mesh", (4, 4)))
        # 4x4 mesh: 2 phases x sum of node degrees (2*24 directed links)
        assert len(items) == 2 * 48


class TestFaultAndReliabilityFields:
    def test_defaults_omitted_from_dict(self):
        """Disabled fields must vanish from to_dict so pre-existing
        stored results keep their content-hash keys."""
        data = clrp_spec().to_dict()
        assert "mtbf" not in data
        assert "mttr" not in data
        assert "reliability" not in data["config"]

    def test_mtbf_round_trip(self):
        spec = clrp_spec(mtbf=1500, mttr=700)
        again = JobSpec.from_dict(spec.to_dict())
        assert again == spec
        assert again.mtbf == 1500 and again.mttr == 700

    def test_reliability_round_trip(self):
        from repro.sim.config import ReliabilityConfig

        config = NetworkConfig(
            dims=(4, 4), protocol="clrp",
            reliability=ReliabilityConfig(timeout=99, max_retries=3),
        )
        spec = JobSpec(
            config=config,
            workload=WorkloadRecipe.make(
                "uniform", load=0.1, length=16, duration=300
            ),
        )
        again = JobSpec.from_dict(spec.to_dict())
        assert again == spec
        assert again.config.reliability.timeout == 99

    def test_mtbf_changes_key(self):
        assert clrp_spec().key() != clrp_spec(mtbf=1000).key()

    def test_validation(self):
        with pytest.raises(ConfigError):
            clrp_spec(mtbf=-1)
        with pytest.raises(ConfigError):
            clrp_spec(mttr=-1)

    def test_json_round_trip_with_faults(self):
        import json

        spec = clrp_spec(mtbf=800, mttr=200)
        data = json.loads(json.dumps(spec.to_dict()))
        assert JobSpec.from_dict(data).key() == spec.key()


class TestMetricsEveryField:
    def test_default_omitted_from_dict_and_key_stable(self):
        # Adding the field must not invalidate pre-existing cache keys.
        data = clrp_spec().to_dict()
        assert "metrics_every" not in data
        assert clrp_spec().key() == clrp_spec(metrics_every=0).key()

    def test_round_trip(self):
        spec = clrp_spec(metrics_every=250)
        again = JobSpec.from_dict(spec.to_dict())
        assert again == spec
        assert again.metrics_every == 250

    def test_changes_key_when_enabled(self):
        assert clrp_spec().key() != clrp_spec(metrics_every=100).key()

    def test_validation(self):
        with pytest.raises(ConfigError):
            clrp_spec(metrics_every=-1)

    def test_sampled_job_carries_observe_summary(self):
        from repro.orchestrate.runner import execute_job

        metrics = execute_job(clrp_spec(metrics_every=50))
        observe = metrics["observe"]
        assert observe["every"] == 50
        assert observe["samples"] >= 1
        assert "messages.outstanding" in observe["series"]

    def test_unsampled_job_has_no_observe_block(self):
        from repro.orchestrate.runner import execute_job

        assert "observe" not in execute_job(clrp_spec())

    def test_sampling_does_not_change_results(self):
        from repro.orchestrate.runner import execute_job

        plain = execute_job(clrp_spec())
        sampled = execute_job(clrp_spec(metrics_every=50))
        sampled.pop("observe")
        assert sampled == plain
