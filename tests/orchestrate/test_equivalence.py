"""Acceptance: parallel campaigns are bit-identical to serial ones.

``run_jobs`` executes every job through the same :func:`execute_job`
path whether in-process or in a forked worker, and merges outcomes by
job index -- so an 8-point CLRP load sweep at ``jobs=4`` must reproduce
the ``jobs=1`` metrics *exactly* (floats compared with ``==``, not
approx).
"""

from repro.analysis.experiments import run_load_sweep, run_seed_sweep
from repro.network.message import MessageFactory
from repro.orchestrate import run_jobs
from repro.sim.config import NetworkConfig
from repro.sim.rng import SimRandom
from repro.traffic import UniformPattern, uniform_workload

LOADS = [0.02, 0.03, 0.04, 0.05, 0.06, 0.07, 0.08, 0.09]


def make_config():
    return NetworkConfig(dims=(4, 4), protocol="clrp", seed=3)


def make_workload(load):
    return uniform_workload(
        MessageFactory(),
        UniformPattern(16),
        num_nodes=16,
        offered_load=load,
        length=8,
        duration=250,
        rng=SimRandom(3),
    )


def sweep(jobs):
    return run_load_sweep(
        make_config,
        make_workload,
        LOADS,
        max_cycles=20_000,
        warmup=50,
        label="eq",
        jobs=jobs,
    )


class TestLoadSweepEquivalence:
    def test_eight_point_clrp_sweep_jobs4_bit_identical_to_serial(self):
        serial = sweep(jobs=1)
        parallel = sweep(jobs=4)
        assert len(serial) == len(parallel) == len(LOADS)
        for (load_s, rs), (load_p, rp) in zip(serial, parallel):
            assert load_s == load_p
            # Bit-identical per-point metrics: latency, throughput,
            # mode breakdown and every counter.
            assert rp.mean_latency == rs.mean_latency
            assert rp.p95_latency == rs.p95_latency
            assert rp.throughput == rs.throughput
            assert rp.delivered == rs.delivered
            assert rp.injected == rs.injected
            assert rp.mode_breakdown == rs.mode_breakdown
            assert rp.counters == rs.counters
            assert rp.sim.cycles == rs.sim.cycles
            assert rp.sim.completed == rs.sim.completed
            assert rp.label == rs.label

    def test_parallel_run_is_itself_deterministic(self):
        a = sweep(jobs=4)
        b = sweep(jobs=4)
        for (_, ra), (_, rb) in zip(a, b):
            assert ra.counters == rb.counters
            assert ra.mean_latency == rb.mean_latency


class TestSeedSweepEquivalence:
    def test_seed_sweep_parallel_matches_serial(self):
        def make_cfg(seed):
            return NetworkConfig(dims=(4, 4), protocol="clrp", seed=seed)

        def make_wl(seed):
            return uniform_workload(
                MessageFactory(),
                UniformPattern(16),
                num_nodes=16,
                offered_load=0.05,
                length=8,
                duration=200,
                rng=SimRandom(seed),
            )

        seeds = [0, 1, 2, 3]
        serial = run_seed_sweep(
            make_cfg, make_wl, seeds, max_cycles=20_000, label="s"
        )
        parallel = run_seed_sweep(
            make_cfg, make_wl, seeds, max_cycles=20_000, label="s", jobs=4
        )
        assert parallel["latency_mean"] == serial["latency_mean"]
        assert parallel["latency_std"] == serial["latency_std"]
        assert parallel["throughput_mean"] == serial["throughput_mean"]
        assert parallel["throughput_std"] == serial["throughput_std"]
        for rs, rp in zip(serial["results"], parallel["results"]):
            assert rp.mean_latency == rs.mean_latency
            assert rp.counters == rs.counters


class TestMergeOrder:
    def test_results_merge_in_job_order_not_completion_order(self):
        """Heavier early jobs finish last; merge must still be by index."""
        from repro.orchestrate import JobSpec, WorkloadRecipe

        specs = [
            JobSpec(
                config=NetworkConfig(dims=(4, 4), protocol="wormhole",
                                     wave=None, seed=7),
                workload=WorkloadRecipe.make(
                    "uniform", load=load, length=8, duration=duration
                ),
                label=f"m@{load:g}",
                max_cycles=20_000,
            )
            # First job simulates far more traffic than the rest.
            for load, duration in [(0.2, 1500), (0.02, 100), (0.02, 120),
                                   (0.02, 140)]
        ]
        outcomes = run_jobs(specs, jobs=4)
        assert [o.spec.label for o in outcomes] == [s.label for s in specs]
        assert all(o.ok for o in outcomes)
