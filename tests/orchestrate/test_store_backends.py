"""Store backends: sqlite sharding, factory, round-trips, robustness.

The JSONL store is the simple single-file backend; the sqlite store is
the sharded service-scale backend.  Both implement BaseResultStore and
must be interchangeable: a record written through one and copied to the
other round-trips bit-identically, torn/concurrent writes never poison
a store, and compaction reports exactly what it dropped.
"""

import json
import multiprocessing

import pytest

from repro.orchestrate import (
    CompactStats,
    ResultStore,
    SqliteResultStore,
    copy_records,
    open_store,
)
from repro.orchestrate.spec import JobSpec, WorkloadRecipe
from repro.orchestrate.store_sqlite import shard_name
from repro.sim.config import NetworkConfig


def tiny_spec(load=0.05, seed=0) -> JobSpec:
    return JobSpec(
        config=NetworkConfig(dims=(4, 4), protocol="wormhole", wave=None,
                             seed=seed),
        workload=WorkloadRecipe.make(
            "uniform", load=load, length=8, duration=150
        ),
        label=f"tiny@{load:g}#{seed}",
        max_cycles=20_000,
    )


class TestSqliteBasics:
    def test_record_get_reload(self, tmp_path):
        root = tmp_path / "store"
        store = SqliteResultStore(root)
        spec = tiny_spec()
        store.record(
            spec.key(), spec_dict=spec.to_dict(), status="ok",
            metrics={"throughput": 0.25}, elapsed_s=1.0,
        )
        store.close()
        reloaded = SqliteResultStore(root)
        assert len(reloaded) == 1
        assert reloaded.cached_metrics(spec.key()) == {"throughput": 0.25}
        assert reloaded.get(spec.key())["label"] == spec.label
        reloaded.close()

    def test_failed_records_are_not_cache_hits(self, tmp_path):
        store = SqliteResultStore(tmp_path / "store")
        spec = tiny_spec()
        store.record(
            spec.key(), spec_dict=spec.to_dict(), status="failed",
            failure={"kind": "exception", "message": "boom"},
        )
        assert store.cached_metrics(spec.key()) is None
        assert store.get(spec.key())["failure"]["kind"] == "exception"

    def test_last_record_wins(self, tmp_path):
        store = SqliteResultStore(tmp_path / "store")
        spec = tiny_spec()
        store.record(spec.key(), spec_dict=spec.to_dict(), status="failed",
                     failure={"kind": "crash", "message": "died"})
        store.record(spec.key(), spec_dict=spec.to_dict(), status="ok",
                     metrics={"throughput": 1.0})
        assert len(store) == 1
        assert store.cached_metrics(spec.key()) == {"throughput": 1.0}

    def test_shards_are_per_campaign(self, tmp_path):
        store = SqliteResultStore(tmp_path / "store")
        a, b = tiny_spec(0.05), tiny_spec(0.1)
        store.record(a.key(), spec_dict=a.to_dict(), status="ok",
                     metrics={}, campaign="alpha")
        store.record(b.key(), spec_dict=b.to_dict(), status="ok",
                     metrics={}, campaign="beta sweep")
        assert store.describe()["shards"] == ["alpha", "beta_sweep"]
        assert store.campaign_keys("alpha") == [a.key()]
        assert store.campaign_keys("beta sweep") == [b.key()]
        # Dedup index spans shards: both keys resolve from one store.
        assert store.get(a.key()) is not None
        assert store.get(b.key()) is not None

    def test_rerecord_moves_key_between_shards(self, tmp_path):
        store = SqliteResultStore(tmp_path / "store")
        spec = tiny_spec()
        store.record(spec.key(), spec_dict=spec.to_dict(), status="ok",
                     metrics={}, campaign="old")
        store.record(spec.key(), spec_dict=spec.to_dict(), status="ok",
                     metrics={"v": 2}, campaign="new")
        assert store.campaign_keys("old") == []
        assert store.campaign_keys("new") == [spec.key()]
        assert len(store) == 1
        assert store.get(spec.key())["metrics"] == {"v": 2}

    def test_shard_name_slugs_hostile_campaign_labels(self):
        assert shard_name("alpha") == "alpha"
        assert shard_name("../../etc/passwd") == "etc_passwd"
        assert shard_name("") == "default"
        assert len(shard_name("x" * 500)) <= 80

    def test_compact_reports_zero_dropped(self, tmp_path):
        store = SqliteResultStore(tmp_path / "store")
        spec = tiny_spec()
        store.record(spec.key(), spec_dict=spec.to_dict(), status="ok",
                     metrics={})
        store.record(spec.key(), spec_dict=spec.to_dict(), status="ok",
                     metrics={"v": 2})
        stats = store.compact()
        assert stats == CompactStats(kept=1, dropped=0)

    def test_concurrent_readers_and_writer(self, tmp_path):
        # sqlite's own locking: a second store handle on the same root
        # sees committed writes from the first.
        root = tmp_path / "store"
        writer, reader = SqliteResultStore(root), SqliteResultStore(root)
        spec = tiny_spec()
        writer.record(spec.key(), spec_dict=spec.to_dict(), status="ok",
                      metrics={"throughput": 0.5})
        assert reader.cached_metrics(spec.key()) == {"throughput": 0.5}


class TestOpenStoreFactory:
    def test_jsonl_by_default(self, tmp_path):
        store = open_store(tmp_path / "results.jsonl")
        assert isinstance(store, ResultStore)
        assert store.describe()["backend"] == "jsonl"

    @pytest.mark.parametrize("prefix", ["sqlite:", "sqlite://"])
    def test_sqlite_url(self, tmp_path, prefix):
        store = open_store(f"{prefix}{tmp_path / 'shards-root'}")
        assert isinstance(store, SqliteResultStore)
        assert store.describe()["backend"] == "sqlite"

    def test_existing_directory_is_sqlite(self, tmp_path):
        root = tmp_path / "existing"
        SqliteResultStore(root).close()  # creates the layout
        assert isinstance(open_store(root), SqliteResultStore)

    def test_sqlite_suffix_is_sqlite(self, tmp_path):
        assert isinstance(
            open_store(tmp_path / "results.sqlite"), SqliteResultStore
        )


class TestBackendRoundTrip:
    def populate(self, store):
        for i, load in enumerate((0.05, 0.1, 0.2)):
            spec = tiny_spec(load)
            store.record(
                spec.key(), spec_dict=spec.to_dict(),
                status="ok" if i else "failed",
                metrics=None if not i else {"throughput": load * 2,
                                            "mean_latency": 13.25},
                failure={"kind": "x", "message": "y"} if not i else None,
                elapsed_s=0.5 + i, attempts=i + 1, campaign=f"camp-{i % 2}",
            )

    def test_jsonl_to_sqlite_and_back_is_identical(self, tmp_path):
        jsonl = ResultStore(tmp_path / "a.jsonl")
        self.populate(jsonl)
        sqlite = SqliteResultStore(tmp_path / "b")
        assert copy_records(jsonl, sqlite) == 3
        back = ResultStore(tmp_path / "c.jsonl")
        assert copy_records(sqlite, back) == 3
        # Bit-identical records after two backend hops, including the
        # original recorded_at stamps and campaign assignment.
        assert list(jsonl.records()) == list(back.records())
        assert list(jsonl.records()) == list(sqlite.records())

    def test_cache_semantics_identical_across_backends(self, tmp_path):
        jsonl = ResultStore(tmp_path / "a.jsonl")
        self.populate(jsonl)
        sqlite = SqliteResultStore(tmp_path / "b")
        copy_records(jsonl, sqlite)
        for key in jsonl.keys():
            assert jsonl.cached_metrics(key) == sqlite.cached_metrics(key)
        assert jsonl.keys() == sqlite.keys()


class TestJsonlRobustness:
    def test_torn_line_mid_file_recovers_neighbours(self, tmp_path):
        """A torn line anywhere -- not just the tail -- must only lose
        itself: every other intact line still loads."""
        path = tmp_path / "results.jsonl"
        store = ResultStore(path)
        specs = [tiny_spec(load) for load in (0.05, 0.1, 0.2)]
        for spec in specs:
            store.record(spec.key(), spec_dict=spec.to_dict(), status="ok",
                         metrics={"load": spec.workload.param("load")})
        lines = path.read_text().splitlines()
        lines[1] = lines[1][: len(lines[1]) // 2]  # tear the MIDDLE line
        path.write_text("\n".join(lines) + "\n")
        reloaded = ResultStore(path)
        assert len(reloaded) == 2
        assert reloaded.cached_metrics(specs[0].key()) == {"load": 0.05}
        assert reloaded.cached_metrics(specs[1].key()) is None
        assert reloaded.cached_metrics(specs[2].key()) == {"load": 0.2}

    def test_concurrent_appends_from_two_processes(self, tmp_path):
        """Two writer processes appending to one JSONL file must
        interleave whole lines (single O_APPEND write per record)."""
        path = tmp_path / "results.jsonl"
        ctx = multiprocessing.get_context("fork")
        procs = [
            ctx.Process(target=_append_batch, args=(path, writer, 25))
            for writer in range(2)
        ]
        for p in procs:
            p.start()
        for p in procs:
            p.join(timeout=60)
            assert p.exitcode == 0
        merged = ResultStore(path)
        assert len(merged) == 50
        for line in path.read_text().splitlines():
            json.loads(line)  # every line intact, none interleaved
        for writer in range(2):
            for i in range(25):
                assert merged.get(f"w{writer}-{i:03d}") is not None


class TestCompact:
    def test_drops_superseded_lines_and_reports_counts(self, tmp_path):
        path = tmp_path / "results.jsonl"
        store = ResultStore(path)
        spec_a, spec_b = tiny_spec(0.05), tiny_spec(0.1)
        for attempt in range(3):  # 3 historical lines for spec_a
            store.record(spec_a.key(), spec_dict=spec_a.to_dict(),
                         status="ok", metrics={"attempt": attempt})
        store.record(spec_b.key(), spec_dict=spec_b.to_dict(), status="ok",
                     metrics={})
        assert len(path.read_text().splitlines()) == 4
        stats = store.compact()
        assert stats == CompactStats(kept=2, dropped=2)
        assert len(path.read_text().splitlines()) == 2
        reloaded = ResultStore(path)
        assert reloaded.cached_metrics(spec_a.key()) == {"attempt": 2}
        assert reloaded.cached_metrics(spec_b.key()) == {}

    def test_compact_is_idempotent(self, tmp_path):
        path = tmp_path / "results.jsonl"
        store = ResultStore(path)
        spec = tiny_spec()
        store.record(spec.key(), spec_dict=spec.to_dict(), status="ok",
                     metrics={})
        first = store.compact()
        second = ResultStore(path).compact()
        assert first == CompactStats(kept=1, dropped=0)
        assert second == CompactStats(kept=1, dropped=0)

    def test_compact_of_missing_file_is_empty(self, tmp_path):
        store = ResultStore(tmp_path / "never-written.jsonl")
        assert store.compact() == CompactStats(kept=0, dropped=0)


def _append_batch(path, writer: int, count: int) -> None:
    spec = tiny_spec()
    store = ResultStore(path)
    for i in range(count):
        store.record(
            f"w{writer}-{i:03d}", spec_dict=spec.to_dict(), status="ok",
            metrics={"writer": writer, "i": i,
                     "pad": "x" * 2000},  # big lines stress interleaving
        )
