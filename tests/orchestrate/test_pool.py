"""Worker pool robustness: failures, timeouts, crashes, retries, progress.

The misbehaving recipes below are registered at import time, so the
forked workers inherit them (the pool uses the ``fork`` start method).
"""

import os
import time
from pathlib import Path

from repro.orchestrate import (
    FAILURE_CRASH,
    FAILURE_EXCEPTION,
    FAILURE_TIMEOUT,
    ResultStore,
    register_recipe,
    run_jobs,
)
from repro.orchestrate.spec import JobSpec, WorkloadRecipe
from repro.sim.config import NetworkConfig


@register_recipe("_test_raise")
def _raise(spec, topology):
    raise RuntimeError("deliberate recipe failure")


@register_recipe("_test_hang")
def _hang(spec, topology):
    time.sleep(60)
    return []


@register_recipe("_test_crash")
def _crash(spec, topology):
    os._exit(42)  # hard worker death: no exception, no result


@register_recipe("_test_fail_unless_flag")
def _fail_unless_flag(spec, topology):
    flag = Path(str(spec.workload.require("flag_path")))
    if not flag.exists():
        raise RuntimeError("flag file missing")
    return _ok_items()


def _ok_items():
    from repro.network.message import MessageFactory
    from repro.traffic.workloads import pair_stream_workload

    return pair_stream_workload(
        MessageFactory(), [(0, 1)], messages_per_pair=1, length=4, gap=1
    )


def spec_of(kind: str, *, tag: int = 0, **params) -> JobSpec:
    return JobSpec(
        config=NetworkConfig(dims=(2, 2), protocol="wormhole", wave=None,
                             seed=tag),
        workload=WorkloadRecipe.make(kind, **params),
        label=f"{kind}#{tag}",
        max_cycles=5_000,
    )


def ok_spec(tag: int = 0) -> JobSpec:
    return spec_of(
        "pair_stream", tag=tag,
        pairs=[[0, 1]], messages_per_pair=1, length=4, gap=1,
    )


class TestFailureRecords:
    def test_serial_exception_becomes_record(self):
        outcomes = run_jobs(
            [ok_spec(0), spec_of("_test_raise"), ok_spec(1)], jobs=1
        )
        assert [o.status for o in outcomes] == ["ok", "failed", "ok"]
        failure = outcomes[1].failure
        assert failure["kind"] == FAILURE_EXCEPTION
        assert "deliberate recipe failure" in failure["message"]

    def test_parallel_exception_campaign_completes(self):
        outcomes = run_jobs(
            [ok_spec(0), spec_of("_test_raise"), ok_spec(1), ok_spec(2)],
            jobs=2,
        )
        assert [o.status for o in outcomes] == ["ok", "failed", "ok", "ok"]
        assert outcomes[1].failure["kind"] == FAILURE_EXCEPTION
        # worker-side traceback is preserved for post-mortems
        assert "RuntimeError" in outcomes[1].failure["message"]

    def test_timeout_kills_job_but_not_campaign(self):
        outcomes = run_jobs(
            [ok_spec(0), spec_of("_test_hang"), ok_spec(1)],
            jobs=2,
            timeout_s=1.0,
        )
        assert [o.status for o in outcomes] == ["ok", "failed", "ok"]
        assert outcomes[1].failure["kind"] == FAILURE_TIMEOUT
        assert outcomes[1].elapsed_s >= 1.0

    def test_crash_retried_then_recorded(self):
        outcomes = run_jobs(
            [spec_of("_test_crash"), ok_spec(0)], jobs=2, retries=1
        )
        assert [o.status for o in outcomes] == ["failed", "ok"]
        crash = outcomes[0]
        assert crash.failure["kind"] == FAILURE_CRASH
        assert crash.attempts == 2  # initial + one retry
        assert "exit code 42" in crash.failure["message"]

    def test_crash_no_retries(self):
        [outcome, _] = run_jobs(
            [spec_of("_test_crash"), ok_spec(0)], jobs=2, retries=0
        )
        assert outcome.failure["kind"] == FAILURE_CRASH
        assert outcome.attempts == 1


class TestRetryOnlyFailedOnRerun:
    def test_rerun_reexecutes_only_the_failure(self, tmp_path):
        """Acceptance: failed job re-runs, cache hit on the rest."""
        flag = tmp_path / "flag"
        store = ResultStore(tmp_path / "results.jsonl")
        specs = [
            ok_spec(0),
            spec_of("_test_fail_unless_flag", flag_path=str(flag)),
            ok_spec(1),
        ]
        first = run_jobs(specs, jobs=2, store=store)
        assert [o.status for o in first] == ["ok", "failed", "ok"]

        flag.touch()  # "fix" the failing job
        second = run_jobs(specs, jobs=2, store=store)
        assert [o.status for o in second] == ["ok", "ok", "ok"]
        assert [o.from_cache for o in second] == [True, False, True]


class TestOrderingAndProgress:
    def test_outcomes_ordered_by_job_index(self):
        specs = [ok_spec(tag) for tag in range(5)]
        outcomes = run_jobs(specs, jobs=3)
        assert [o.index for o in outcomes] == list(range(5))
        assert [o.spec.label for o in outcomes] == [s.label for s in specs]

    def test_progress_counts(self):
        events = []
        run_jobs(
            [ok_spec(0), spec_of("_test_raise"), ok_spec(1)],
            jobs=1,
            progress=lambda p: events.append(p),
        )
        final = events[-1]
        assert (final.total, final.done) == (3, 3)
        assert (final.ok, final.failed, final.cached) == (2, 1, 0)
        # every non-initial event carries the outcome that triggered it
        assert all(e.last is not None for e in events[1:])

    def test_more_workers_than_jobs(self):
        outcomes = run_jobs([ok_spec(0)], jobs=8)
        assert outcomes[0].ok
