"""ResultStore: JSONL persistence, cache semantics, resume, torn writes."""

import json

from repro.orchestrate import ResultStore, run_jobs
from repro.orchestrate.spec import JobSpec, WorkloadRecipe
from repro.sim.config import NetworkConfig


def tiny_spec(load=0.05, seed=0) -> JobSpec:
    return JobSpec(
        config=NetworkConfig(dims=(4, 4), protocol="wormhole", wave=None,
                             seed=seed),
        workload=WorkloadRecipe.make(
            "uniform", load=load, length=8, duration=150
        ),
        label=f"tiny@{load:g}#{seed}",
        max_cycles=20_000,
    )


class TestStoreBasics:
    def test_record_and_reload(self, tmp_path):
        path = tmp_path / "results.jsonl"
        store = ResultStore(path)
        spec = tiny_spec()
        store.record(
            spec.key(), spec_dict=spec.to_dict(), status="ok",
            metrics={"throughput": 0.25}, elapsed_s=1.0,
        )
        reloaded = ResultStore(path)
        assert len(reloaded) == 1
        assert reloaded.cached_metrics(spec.key()) == {"throughput": 0.25}

    def test_failed_records_are_not_cache_hits(self, tmp_path):
        store = ResultStore(tmp_path / "results.jsonl")
        spec = tiny_spec()
        store.record(
            spec.key(), spec_dict=spec.to_dict(), status="failed",
            failure={"kind": "exception", "message": "boom"},
        )
        assert store.cached_metrics(spec.key()) is None
        assert store.get(spec.key())["failure"]["kind"] == "exception"

    def test_last_record_wins(self, tmp_path):
        path = tmp_path / "results.jsonl"
        store = ResultStore(path)
        spec = tiny_spec()
        store.record(spec.key(), spec_dict=spec.to_dict(), status="failed",
                     failure={"kind": "crash", "message": "died"})
        store.record(spec.key(), spec_dict=spec.to_dict(), status="ok",
                     metrics={"throughput": 1.0})
        reloaded = ResultStore(path)
        assert reloaded.cached_metrics(spec.key()) == {"throughput": 1.0}

    def test_torn_tail_is_ignored(self, tmp_path):
        path = tmp_path / "results.jsonl"
        store = ResultStore(path)
        spec = tiny_spec()
        store.record(spec.key(), spec_dict=spec.to_dict(), status="ok",
                     metrics={})
        with path.open("a") as fh:
            fh.write('{"key": "deadbeef", "status": "o')  # interrupted write
        reloaded = ResultStore(path)
        assert len(reloaded) == 1
        assert reloaded.cached_metrics(spec.key()) == {}


class TestCacheThroughRunJobs:
    def test_second_run_is_fully_cached(self, tmp_path):
        store = ResultStore(tmp_path / "results.jsonl")
        specs = [tiny_spec(load) for load in (0.05, 0.1)]
        first = run_jobs(specs, jobs=1, store=store)
        assert all(o.ok and not o.from_cache for o in first)

        second = run_jobs(specs, jobs=1, store=store)
        assert all(o.from_cache for o in second)
        # JSON round trip preserves every metric bit-exactly.
        for a, b in zip(first, second):
            assert a.metrics == b.metrics

    def test_cache_survives_process_restart_shape(self, tmp_path):
        """Reload from disk (what a resumed campaign actually does)."""
        path = tmp_path / "results.jsonl"
        specs = [tiny_spec(load) for load in (0.05, 0.1)]
        run_jobs(specs, jobs=1, store=ResultStore(path))
        outcomes = run_jobs(specs, jobs=1, store=ResultStore(path))
        assert all(o.from_cache for o in outcomes)

    def test_changed_spec_misses_cache(self, tmp_path):
        store = ResultStore(tmp_path / "results.jsonl")
        run_jobs([tiny_spec(0.05)], jobs=1, store=store)
        [outcome] = run_jobs([tiny_spec(0.06)], jobs=1, store=store)
        assert not outcome.from_cache

    def test_interrupted_campaign_resumes(self, tmp_path):
        """Half the campaign on disk -> only the rest executes."""
        store = ResultStore(tmp_path / "results.jsonl")
        specs = [tiny_spec(load) for load in (0.05, 0.08, 0.1, 0.12)]
        run_jobs(specs[:2], jobs=1, store=store)  # "interrupted" after 2

        events = []
        outcomes = run_jobs(
            specs, jobs=1, store=store, progress=lambda p: events.append(p)
        )
        assert [o.from_cache for o in outcomes] == [True, True, False, False]
        assert events[0].cached == 2
        assert events[-1].done == 4

    def test_store_file_is_jsonl_with_specs(self, tmp_path):
        path = tmp_path / "results.jsonl"
        run_jobs([tiny_spec(0.05)], jobs=1, store=ResultStore(path))
        lines = [json.loads(line) for line in path.read_text().splitlines()]
        assert len(lines) == 1
        record = lines[0]
        assert record["status"] == "ok"
        assert record["spec"]["workload"]["kind"] == "uniform"
        assert record["metrics"]["delivered"] == record["metrics"]["injected"]
