"""Campaign files and the ``python -m repro batch`` command."""

import json

import pytest

from repro.cli import main
from repro.errors import ConfigError
from repro.orchestrate import expand_entries, load_campaign, spec_from_entry


def write_campaign(path, data):
    path.write_text(json.dumps(data))
    return str(path)


TINY = {
    "name": "tiny",
    "defaults": {
        "dims": "4x4",
        "max_cycles": 20000,
        "warmup": 50,
        "workload": {
            "kind": "uniform", "load": 0.05, "length": 8, "duration": 150
        },
    },
    "grid": {
        "protocol": ["wormhole", "clrp"],
        "workload.load": [0.05, 0.08],
    },
}


class TestExpansion:
    def test_grid_cartesian_product(self):
        entries = expand_entries(TINY)
        assert len(entries) == 4
        assert {(e["protocol"], e["workload"]["load"]) for e in entries} == {
            ("wormhole", 0.05), ("wormhole", 0.08),
            ("clrp", 0.05), ("clrp", 0.08),
        }
        # defaults deep-merged under the dotted grid override
        assert all(e["workload"]["length"] == 8 for e in entries)

    def test_explicit_jobs_appended(self):
        data = dict(TINY, jobs=[{"protocol": "carp"}])
        entries = expand_entries(data)
        assert len(entries) == 5
        assert entries[-1]["protocol"] == "carp"

    def test_empty_campaign_rejected(self):
        with pytest.raises(ConfigError, match="no jobs"):
            expand_entries({"defaults": {}})

    def test_bad_grid_value_rejected(self):
        with pytest.raises(ConfigError, match="non-empty list"):
            expand_entries({"grid": {"seed": 3}})


class TestSpecFromEntry:
    def test_builds_config_and_labels(self):
        entries = expand_entries(TINY)
        specs = [spec_from_entry(e) for e in entries]
        assert {s.config.protocol for s in specs} == {"wormhole", "clrp"}
        assert all(s.max_cycles == 20000 for s in specs)
        assert all(s.warmup == 50 for s in specs)
        assert len({s.key() for s in specs}) == 4
        assert len({s.label for s in specs}) == 4

    def test_wormhole_entry_gets_no_wave(self):
        spec = spec_from_entry(expand_entries(TINY)[0])
        if spec.config.protocol == "wormhole":
            assert spec.config.wave is None

    def test_missing_workload_rejected(self):
        with pytest.raises(ConfigError, match="workload"):
            spec_from_entry({"protocol": "clrp"})

    def test_dims_string_or_list(self):
        base = {"workload": {"kind": "uniform", "load": 0.1, "length": 8,
                             "duration": 100}}
        a = spec_from_entry(dict(base, dims="4x4"))
        b = spec_from_entry(dict(base, dims=[4, 4]))
        assert a.config.dims == b.config.dims == (4, 4)


class TestLoadCampaign:
    def test_load_names_and_counts(self, tmp_path):
        path = write_campaign(tmp_path / "c.json", TINY)
        name, specs = load_campaign(path)
        assert name == "tiny"
        assert len(specs) == 4

    def test_invalid_json_rejected(self, tmp_path):
        path = tmp_path / "bad.json"
        path.write_text("{nope")
        with pytest.raises(ConfigError, match="not valid JSON"):
            load_campaign(path)

    def test_missing_file_rejected(self, tmp_path):
        with pytest.raises(ConfigError, match="cannot read campaign"):
            load_campaign(tmp_path / "absent.json")


class TestBatchCommand:
    def test_batch_runs_and_resumes(self, tmp_path, capsys):
        path = write_campaign(tmp_path / "tiny.json", TINY)
        code = main(["batch", path, "--jobs", "2"])
        out = capsys.readouterr().out
        assert code == 0
        assert "campaign tiny: 4 jobs" in out
        assert "[4/4]" in out
        assert (tmp_path / "tiny.results.jsonl").exists()

        # Second invocation: everything served from the result store.
        code = main(["batch", path, "--jobs", "2"])
        out = capsys.readouterr().out
        assert code == 0
        assert "4 cached" in out
        assert out.count("cached") >= 4

    def test_batch_reports_failures_and_exit_code(self, tmp_path, capsys):
        data = dict(TINY)
        data["jobs"] = [
            # invalid: offered load of 4 flits/cycle with 8-flit messages
            # is fine, but load > length means > 1 msg/cycle -> ConfigError
            {"workload": {"load": 9.0}, "label": "doomed"}
        ]
        path = write_campaign(tmp_path / "mixed.json", data)
        code = main(["batch", path, "--jobs", "2"])
        out = capsys.readouterr().out
        assert code == 1
        assert "failure: doomed" in out
        assert "4/5 jobs ok" in out

    def test_batch_custom_store_path(self, tmp_path, capsys):
        path = write_campaign(tmp_path / "tiny.json", TINY)
        store = tmp_path / "elsewhere" / "r.jsonl"
        code = main(["batch", path, "--jobs", "1", "--store", str(store)])
        assert code == 0
        assert store.exists()
