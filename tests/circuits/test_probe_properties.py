"""Property-based tests of the MB-m probe search.

Hypothesis throws random pre-existing circuits, faults and endpoints at a
plane and checks the MB-m contract every time:

* the probe terminates within the History-Store work bound;
* success yields a *valid* path: connected src -> dst, every hop reserved
  for the circuit, length bounded by ``distance + 2 * misroutes``;
* failure leaves *zero* residual reservations (full unwind);
* the search never touches faulty channels.
"""

from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.circuits.circuit import CircuitState
from repro.circuits.plane import WavePlane
from repro.circuits.probe import ProbeStatus
from repro.sim.config import WaveConfig
from repro.sim.rng import SimRandom
from repro.sim.stats import StatsCollector
from repro.topology import FaultSet, Mesh, Torus


class _NullEngine:
    def probe_failed(self, probe, circuit, cycle):
        pass

    def circuit_established(self, circuit, cycle):
        pass


def build_plane(topo, m, faults):
    plane = WavePlane(
        topo,
        WaveConfig(num_switches=1, misroute_budget=m),
        StatsCollector(),
        faults,
    )
    for n in range(topo.num_nodes):
        plane.register_engine(n, _NullEngine())
    return plane


@st.composite
def scenarios(draw):
    kind = draw(st.sampled_from(["mesh", "torus"]))
    radix = draw(st.integers(3, 5))
    topo = Mesh((radix, radix)) if kind == "mesh" else Torus((radix, radix))
    m = draw(st.integers(0, 4))
    fault_fraction = draw(st.sampled_from([0.0, 0.1, 0.2]))
    fault_seed = draw(st.integers(0, 1000))
    # Random pre-existing circuits to contend with.
    n_blockers = draw(st.integers(0, 6))
    pair_seed = draw(st.integers(0, 1000))
    src = draw(st.integers(0, topo.num_nodes - 1))
    dst = draw(st.integers(0, topo.num_nodes - 1))
    if dst == src:
        dst = (src + 1) % topo.num_nodes
    return topo, m, fault_fraction, fault_seed, n_blockers, pair_seed, src, dst


def run_plane_until_idle(plane, start, limit):
    cycle = start
    while not plane.is_idle() and cycle < start + limit:
        plane.step(cycle)
        cycle += 1
    assert plane.is_idle(), "plane did not settle"
    return cycle


@settings(max_examples=60, deadline=None,
          suppress_health_check=[HealthCheck.too_slow])
@given(scenarios())
def test_mbm_contract(scenario):
    topo, m, fault_fraction, fault_seed, n_blockers, pair_seed, src, dst = scenario
    faults = FaultSet(topo)
    if fault_fraction:
        faults.fail_random_links(fault_fraction, SimRandom(fault_seed))
    plane = build_plane(topo, m, faults)

    # Blockers: establish random circuits first (ignore failures).
    rng = SimRandom(pair_seed).stream("pairs")
    for _ in range(n_blockers):
        a = rng.randrange(topo.num_nodes)
        b = rng.randrange(topo.num_nodes)
        if a == b:
            continue
        plane.launch_probe(a, b, 0, force=False, cycle=0)
    run_plane_until_idle(plane, 1, 20_000)

    circuit, probe = plane.launch_probe(src, dst, 0, force=False, cycle=100)
    end = run_plane_until_idle(plane, 101, 40_000)

    # Work bound (Theorem 3's argument).
    links = len(topo.links())
    assert probe.hops + probe.backtracks <= 2 * links + 2

    if circuit.state is CircuitState.ESTABLISHED:
        # Valid connected path.
        node = src
        for hop_node, port in circuit.path:
            assert hop_node == node
            assert not faults.is_faulty(hop_node, port)
            unit = plane.units[hop_node]
            assert unit.owner(port, 0) == circuit.circuit_id
            assert unit.ack_returned(port, 0)
            node = topo.neighbor(hop_node, port)
        assert node == dst
        # Length bound: minimal distance plus two hops per misroute.
        assert circuit.length <= topo.distance(src, dst) + 2 * probe.misroutes
        assert probe.misroutes <= m
    else:
        assert probe.status is ProbeStatus.FAILED
        # Full unwind: nothing reserved for the failed attempt anywhere.
        for n in range(topo.num_nodes):
            unit = plane.units[n]
            for port, switch in unit.reserved_channels():
                assert unit.owner(port, switch) != circuit.circuit_id
