"""Tests for WavePlane orchestration: acks, teardowns, races, transfers."""

import sys
from pathlib import Path

import pytest

sys.path.insert(0, str(Path(__file__).resolve().parent.parent))

from helpers import build_plane, run_plane, run_until_idle

from repro.circuits.circuit import CircuitState
from repro.circuits.control import ControlFlitKind
from repro.circuits.pcs_unit import ChannelStatus
from repro.errors import ProtocolError
from repro.network.message import Message


def establish(plane, src, dst, switch=0, cycle=0):
    circuit, probe = plane.launch_probe(src, dst, switch, force=False, cycle=cycle)
    run_until_idle(plane, cycle + 1)
    assert circuit.state is CircuitState.ESTABLISHED
    return circuit


class TestAckPropagation:
    def test_ack_sets_bits_backwards(self):
        topo, plane, engines, stats = build_plane(dims=(5,), num_switches=1)
        circuit, _ = plane.launch_probe(0, 4, 0, force=False, cycle=0)
        # Step until probe reached dst (4 hops + decisions).
        acks_seen = []
        for cycle in range(1, 30):
            plane.step(cycle)
            bits = [
                plane.units[n].ack_returned(p, 0)
                for n, p in circuit.path
                if plane.units[n].status(p, 0) is ChannelStatus.RESERVED
            ]
            acks_seen.append(tuple(bits))
            if circuit.state is CircuitState.ESTABLISHED:
                break
        # Ack bits appear from the far end backwards, monotonically.
        final = acks_seen[-1]
        assert all(final)

    def test_established_exactly_once(self):
        topo, plane, engines, stats = build_plane()
        establish(plane, 0, 5)
        assert len(engines[0].established) == 1
        assert stats.count("circuit.established") == 1


class TestTeardown:
    def test_teardown_frees_all_channels(self):
        topo, plane, engines, stats = build_plane()
        circuit = establish(plane, 0, topo.node_at((2, 2)))
        path = list(circuit.path)
        plane.start_teardown(circuit, 100)
        run_until_idle(plane, 101)
        assert circuit.state is CircuitState.DEAD
        for node, port in path:
            assert plane.units[node].status(port, circuit.switch) is ChannelStatus.FREE
        assert engines[0].released

    def test_teardown_of_in_use_circuit_raises(self):
        topo, plane, engines, stats = build_plane()
        circuit = establish(plane, 0, 5)
        msg = Message(msg_id=1, src=0, dst=5, length=32, created=0)
        plane.start_transfer(circuit, msg, 100)
        with pytest.raises(ProtocolError):
            plane.start_teardown(circuit, 100)

    def test_teardown_of_setting_up_circuit_raises(self):
        topo, plane, engines, stats = build_plane()
        circuit, _ = plane.launch_probe(0, 5, 0, force=False, cycle=0)
        with pytest.raises(ProtocolError):
            plane.start_teardown(circuit, 0)

    def test_mappings_removed_on_teardown(self):
        topo, plane, engines, stats = build_plane()
        circuit = establish(plane, 0, topo.node_at((0, 3)))
        mid = topo.node_at((0, 1))
        assert plane.units[mid].direct_map  # circuit crosses mid
        plane.start_teardown(circuit, 100)
        run_until_idle(plane, 101)
        assert not plane.units[mid].direct_map
        assert not plane.units[mid].reverse_map


class TestReleaseRequestRaces:
    def test_duplicate_release_requests_discarded(self):
        """Two nodes request the same victim; the second is discarded."""
        topo, plane, engines, stats = build_plane(dims=(5,), num_switches=1,
                                                  misroute_budget=0)
        victim = establish(plane, 0, 4)
        # Two force probes at different intermediate nodes of the victim.
        f1, _ = plane.launch_probe(1, 4, 0, force=True, cycle=10)
        f2, _ = plane.launch_probe(2, 4, 0, force=True, cycle=10)
        run_until_idle(plane, 11)
        assert victim.state is CircuitState.DEAD
        # Both probes eventually resolved (established or failed cleanly).
        assert f1.state in (CircuitState.ESTABLISHED, CircuitState.DEAD)
        assert f2.state in (CircuitState.ESTABLISHED, CircuitState.DEAD)
        # At least one release request existed; duplicates were dropped or
        # deduped at the engine.
        assert stats.count("clrp.victim_releases_requested") >= 2

    def test_release_req_discarded_when_circuit_already_releasing(self):
        topo, plane, engines, stats = build_plane(dims=(5,), num_switches=1,
                                                  misroute_budget=0)
        victim = establish(plane, 0, 4)
        forced, probe = plane.launch_probe(2, 4, 0, force=True, cycle=10)
        # Let the release request be created, then release locally first.
        run_plane(plane, 11, 2)
        if victim.state is CircuitState.ESTABLISHED:
            plane.start_teardown(victim, 13)
        run_until_idle(plane, 14)
        assert victim.state is CircuitState.DEAD
        # The in-flight request hit a releasing circuit and was discarded,
        # or arrived after death -- either way, no crash and no zombie.
        assert stats.count("clrp.release_req_discarded") >= 0


class TestTransfers:
    def test_transfer_delivers_message(self):
        topo, plane, engines, stats = build_plane()
        delivered = []
        plane.deliver_message = lambda msg, cycle: delivered.append((msg, cycle))
        circuit = establish(plane, 0, 5)
        msg = Message(msg_id=1, src=0, dst=5, length=64, created=0)
        plane.start_transfer(circuit, msg, 50)
        run_until_idle(plane, 51)
        assert len(delivered) == 1
        assert delivered[0][0] is msg
        assert circuit.uses == 1
        assert not circuit.in_use
        assert engines[0].transfers_done

    def test_transfer_on_in_use_circuit_raises(self):
        topo, plane, engines, stats = build_plane()
        circuit = establish(plane, 0, 5)
        m1 = Message(msg_id=1, src=0, dst=5, length=64, created=0)
        m2 = Message(msg_id=2, src=0, dst=5, length=64, created=0)
        plane.start_transfer(circuit, m1, 50)
        with pytest.raises(ProtocolError):
            plane.start_transfer(circuit, m2, 50)

    def test_transfer_on_dead_circuit_raises(self):
        topo, plane, engines, stats = build_plane()
        circuit = establish(plane, 0, 5)
        plane.start_teardown(circuit, 50)
        run_until_idle(plane, 51)
        with pytest.raises(ProtocolError):
            plane.start_transfer(
                circuit, Message(msg_id=1, src=0, dst=5, length=8, created=0), 99
            )

    def test_delivery_time_accounts_pipeline(self):
        topo, plane, engines, stats = build_plane(wave_clock_ratio=4.0,
                                                  wire_delay=2)
        delivered = []
        plane.deliver_message = lambda msg, cycle: delivered.append(cycle)
        dst = topo.node_at((0, 3))
        circuit = establish(plane, 0, dst)
        msg = Message(msg_id=1, src=0, dst=dst, length=32, created=0)
        transfer = plane.start_transfer(circuit, msg, 100)
        run_until_idle(plane, 101)
        assert transfer.pipe_delay == circuit.length * 2
        assert delivered[0] == transfer.last_sent_cycle + transfer.pipe_delay


class TestIdleness:
    def test_fresh_plane_idle(self):
        topo, plane, engines, stats = build_plane()
        assert plane.is_idle()

    def test_busy_during_setup(self):
        topo, plane, engines, stats = build_plane()
        plane.launch_probe(0, 5, 0, force=False, cycle=0)
        assert not plane.is_idle()
        run_until_idle(plane, 1)
        assert plane.is_idle()
