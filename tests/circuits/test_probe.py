"""F4: probe format and MB-m search mechanics on a live plane."""

import sys
from pathlib import Path

import pytest

sys.path.insert(0, str(Path(__file__).resolve().parent.parent))

from helpers import build_plane, run_plane, run_until_idle

from repro.circuits.circuit import CircuitState
from repro.circuits.pcs_unit import ChannelStatus
from repro.circuits.probe import ProbeStatus
from repro.errors import ProtocolError


class TestProbeFormat:
    """Fig. 4 fields are all represented."""

    def test_fields(self):
        topo, plane, engines, stats = build_plane()
        circuit, probe = plane.launch_probe(0, 5, 0, force=False, cycle=0)
        assert probe.misroutes == 0  # Misroute field
        assert probe.force is False  # Force bit
        assert probe.backtracking is False  # Backtrack bit
        assert probe.src == 0 and probe.dst == 5  # offsets derivable
        assert probe.status is ProbeStatus.SEARCHING

    def test_self_circuit_rejected(self):
        topo, plane, engines, stats = build_plane()
        with pytest.raises(ProtocolError):
            plane.launch_probe(3, 3, 0, force=False, cycle=0)

    def test_bad_switch_rejected(self):
        topo, plane, engines, stats = build_plane(num_switches=2)
        with pytest.raises(ProtocolError):
            plane.launch_probe(0, 5, 2, force=False, cycle=0)


class TestSuccessfulSetup:
    def test_minimal_path_reserved(self):
        topo, plane, engines, stats = build_plane()
        dst = topo.node_at((2, 2))
        circuit, probe = plane.launch_probe(0, dst, 0, force=False, cycle=0)
        run_until_idle(plane, 1)
        assert circuit.state is CircuitState.ESTABLISHED
        assert circuit.length == topo.distance(0, dst)
        # Every hop reserved for this circuit with the ack bit set.
        for node, port in circuit.path:
            unit = plane.units[node]
            assert unit.status(port, 0) is ChannelStatus.RESERVED
            assert unit.owner(port, 0) == circuit.circuit_id
            assert unit.ack_returned(port, 0)

    def test_establishment_callback_at_source(self):
        topo, plane, engines, stats = build_plane()
        circuit, _ = plane.launch_probe(0, 5, 0, force=False, cycle=0)
        run_until_idle(plane, 1)
        assert engines[0].established
        assert engines[0].established[0][0] is circuit

    def test_setup_time_scales_with_distance(self):
        """Probe out + ack back: about 2 hops of control latency per hop."""
        topo, plane, engines, stats = build_plane()
        dst = topo.node_at((3, 3))
        circuit, _ = plane.launch_probe(0, dst, 0, force=False, cycle=0)
        end = run_until_idle(plane, 1)
        d = topo.distance(0, dst)
        assert 2 * d <= end <= 2 * d + 6

    def test_path_is_connected_src_to_dst(self):
        topo, plane, engines, stats = build_plane()
        dst = topo.node_at((1, 3))
        circuit, _ = plane.launch_probe(0, dst, 0, force=False, cycle=0)
        run_until_idle(plane, 1)
        node = 0
        for hop_node, port in circuit.path:
            assert hop_node == node
            node = topo.neighbor(node, port)
        assert node == dst

    def test_probe_hop_counter(self):
        topo, plane, engines, stats = build_plane()
        dst = topo.node_at((0, 3))
        circuit, probe = plane.launch_probe(0, dst, 0, force=False, cycle=0)
        run_until_idle(plane, 1)
        assert probe.hops == 3
        assert probe.backtracks == 0


class TestContention:
    def test_two_circuits_disjoint_channels(self):
        topo, plane, engines, stats = build_plane()
        a, _ = plane.launch_probe(0, topo.node_at((2, 2)), 0, force=False, cycle=0)
        b, _ = plane.launch_probe(
            topo.node_at((0, 1)), topo.node_at((2, 3)), 0, force=False, cycle=0
        )
        run_until_idle(plane, 1)
        assert a.state is CircuitState.ESTABLISHED
        assert b.state is CircuitState.ESTABLISHED
        assert not set(a.hop_channels()) & set(b.hop_channels())

    def test_misroute_around_busy_channel(self):
        """A probe blocked on minimal ports misroutes when budget allows."""
        topo, plane, engines, stats = build_plane(dims=(3, 3), misroute_budget=2)
        # Occupy the whole middle row path 0->1->2 along y at x=0 by a
        # first circuit, forcing the second probe off the minimal line.
        left = topo.node_at((0, 0))
        right = topo.node_at((0, 2))
        a, _ = plane.launch_probe(left, right, 0, force=False, cycle=0)
        run_until_idle(plane, 1)
        b, probe_b = plane.launch_probe(left, right, 0, force=False, cycle=100)
        run_until_idle(plane, 101)
        assert b.state is CircuitState.ESTABLISHED
        assert b.length > topo.distance(left, right)  # took a detour
        assert probe_b.misroutes > 0

    def test_zero_misroute_budget_backtracks_to_failure(self):
        """With m=0 and the only minimal channel taken end-to-end, fail."""
        topo, plane, engines, stats = build_plane(dims=(2,), misroute_budget=0,
                                                  num_switches=1)
        a, _ = plane.launch_probe(0, 1, 0, force=False, cycle=0)
        run_until_idle(plane, 1)
        b, probe_b = plane.launch_probe(0, 1, 0, force=False, cycle=50)
        run_until_idle(plane, 51)
        assert probe_b.status is ProbeStatus.FAILED
        assert engines[0].failed
        assert b.state is CircuitState.DEAD
        assert b.path == []  # reservations fully unwound

    def test_failed_probe_releases_everything(self):
        topo, plane, engines, stats = build_plane(dims=(2, 2), misroute_budget=0,
                                                  num_switches=1)
        # Saturate all channels out of node 3's neighbourhood towards 0.
        c1, _ = plane.launch_probe(1, 0, 0, force=False, cycle=0)
        c2, _ = plane.launch_probe(2, 0, 0, force=False, cycle=0)
        run_until_idle(plane, 1)
        c3, p3 = plane.launch_probe(3, 0, 0, force=False, cycle=50)
        run_until_idle(plane, 51)
        if p3.status is ProbeStatus.FAILED:
            # No channel may remain reserved by the failed attempt.
            for node in range(topo.num_nodes):
                for port, switch in plane.units[node].reserved_channels():
                    assert plane.units[node].owner(port, switch) in (
                        c1.circuit_id,
                        c2.circuit_id,
                    )

    def test_history_prevents_researching(self):
        """A probe that backtracked over a port never retries it."""
        topo, plane, engines, stats = build_plane(dims=(3, 3), misroute_budget=1)
        src = topo.node_at((0, 0))
        dst = topo.node_at((2, 2))
        blocker, _ = plane.launch_probe(
            topo.node_at((1, 0)), topo.node_at((1, 2)), 0, force=False, cycle=0
        )
        run_until_idle(plane, 1)
        c, probe = plane.launch_probe(src, dst, 0, force=False, cycle=50)
        run_until_idle(plane, 51)
        # Work is bounded: hops + backtracks within the MB-m bound.
        links = len(topo.links())
        assert probe.hops + probe.backtracks <= 2 * links


class TestForceBit:
    def test_force_probe_tears_down_established_victim(self):
        topo, plane, engines, stats = build_plane(dims=(2,), num_switches=1,
                                                  misroute_budget=0)
        victim, _ = plane.launch_probe(0, 1, 0, force=False, cycle=0)
        run_until_idle(plane, 1)
        assert victim.state is CircuitState.ESTABLISHED
        forced, probe = plane.launch_probe(0, 1, 0, force=True, cycle=50)
        run_until_idle(plane, 51)
        assert victim.state is CircuitState.DEAD
        assert forced.state is CircuitState.ESTABLISHED
        assert stats.count("clrp.victim_releases_requested") >= 1

    def test_force_probe_requests_remote_release(self):
        """Victim crossing the blocked node but starting elsewhere."""
        topo, plane, engines, stats = build_plane(dims=(4,), num_switches=1,
                                                  misroute_budget=0)
        victim, _ = plane.launch_probe(0, 3, 0, force=False, cycle=0)
        run_until_idle(plane, 1)
        # A force probe from node 1 to node 3 needs channels the victim
        # holds; the victim starts at node 0, i.e. remotely.
        forced, probe = plane.launch_probe(1, 3, 0, force=True, cycle=50)
        run_until_idle(plane, 51)
        assert victim.state is CircuitState.DEAD
        assert forced.state is CircuitState.ESTABLISHED
        assert engines[0].release_requests  # the victim's source was asked

    def test_force_probe_backtracks_on_setting_up_channels(self):
        """Theorem 1's critical rule: never wait on circuits being set up."""
        topo, plane, engines, stats = build_plane(dims=(2,), num_switches=1,
                                                  misroute_budget=0,
                                                  setup_hop_delay=10)
        # Victim probe is *in flight* (slow hops), channel reserved but no
        # ack -> the force probe must backtrack and fail, not wait.
        slow, _ = plane.launch_probe(0, 1, 0, force=False, cycle=0)
        plane.step(1)  # reserve the first (only) hop; ack not yet back
        forced, probe = plane.launch_probe(0, 1, 0, force=True, cycle=1)
        for cycle in range(2, 9):
            plane.step(cycle)
        assert probe.status is ProbeStatus.FAILED
        assert stats.count("probe.force_backtracks") >= 1

    def test_waiting_probe_gets_claimed_channel(self):
        """The freed channel goes to the waiting probe, not a newcomer."""
        topo, plane, engines, stats = build_plane(dims=(2,), num_switches=1,
                                                  misroute_budget=0)
        victim, _ = plane.launch_probe(0, 1, 0, force=False, cycle=0)
        run_until_idle(plane, 1)
        forced, fp = plane.launch_probe(0, 1, 0, force=True, cycle=10)
        # While the teardown is in flight, a non-force newcomer also tries.
        newcomer, np_ = plane.launch_probe(0, 1, 0, force=False, cycle=11)
        run_until_idle(plane, 11)
        assert forced.state is CircuitState.ESTABLISHED
        assert np_.status is ProbeStatus.FAILED
