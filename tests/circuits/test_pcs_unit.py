"""F3: tests for the PCS routing control unit's status registers (Fig. 3)."""

import pytest

from repro.circuits.pcs_unit import ChannelStatus, PCSControlUnit
from repro.errors import ProtocolError


def unit(num_ports=4, num_switches=2, node=0):
    return PCSControlUnit(node, num_ports, num_switches)


class TestChannelStatus:
    def test_all_channels_start_free(self):
        u = unit()
        for p in range(4):
            for s in range(2):
                assert u.status(p, s) is ChannelStatus.FREE
                assert u.owner(p, s) is None
                assert not u.ack_returned(p, s)

    def test_reserve_sets_owner(self):
        u = unit()
        u.reserve(1, 0, circuit_id=42)
        assert u.status(1, 0) is ChannelStatus.RESERVED
        assert u.owner(1, 0) == 42

    def test_reserve_is_per_switch(self):
        u = unit()
        u.reserve(1, 0, 42)
        assert u.status(1, 1) is ChannelStatus.FREE

    def test_double_reserve_raises(self):
        u = unit()
        u.reserve(1, 0, 42)
        with pytest.raises(ProtocolError):
            u.reserve(1, 0, 43)

    def test_release_requires_matching_owner(self):
        u = unit()
        u.reserve(1, 0, 42)
        with pytest.raises(ProtocolError):
            u.release(1, 0, 99)
        u.release(1, 0, 42)
        assert u.status(1, 0) is ChannelStatus.FREE

    def test_release_clears_ack_bit(self):
        u = unit()
        u.reserve(1, 0, 42)
        u.set_ack_returned(1, 0, 42)
        assert u.ack_returned(1, 0)
        u.release(1, 0, 42)
        assert not u.ack_returned(1, 0)

    def test_ack_requires_owner_match(self):
        u = unit()
        u.reserve(1, 0, 42)
        with pytest.raises(ProtocolError):
            u.set_ack_returned(1, 0, 43)

    def test_unknown_channel_raises(self):
        u = unit()
        with pytest.raises(ProtocolError):
            u.status(9, 0)
        with pytest.raises(ProtocolError):
            u.status(0, 5)

    def test_mark_faulty(self):
        u = unit()
        u.mark_faulty(2, 1)
        assert u.status(2, 1) is ChannelStatus.FAULTY

    def test_cannot_fault_reserved_channel(self):
        u = unit()
        u.reserve(2, 1, 7)
        with pytest.raises(ProtocolError):
            u.mark_faulty(2, 1)


class TestMappings:
    def test_direct_and_reverse_are_inverse(self):
        u = unit()
        u.map_through((0, 0), (3, 0))
        assert u.next_hop((0, 0)) == (3, 0)
        assert u.prev_hop((3, 0)) == (0, 0)

    def test_source_hop_has_no_mapping(self):
        u = unit()
        u.map_through(None, (3, 0))
        assert u.prev_hop((3, 0)) is None

    def test_unmap_removes_both_directions(self):
        u = unit()
        u.map_through((0, 0), (3, 0))
        u.unmap_through((3, 0))
        assert u.next_hop((0, 0)) is None
        assert u.prev_hop((3, 0)) is None

    def test_unmap_unknown_is_noop(self):
        u = unit()
        u.unmap_through((3, 0))  # must not raise


class TestHistoryStore:
    def test_search_recorded_per_probe(self):
        u = unit()
        u.record_search(7, port=2)
        assert u.searched(7, 2)
        assert not u.searched(7, 3)
        assert not u.searched(8, 2)

    def test_clear_history(self):
        u = unit()
        u.record_search(7, 2)
        u.clear_history(7)
        assert not u.searched(7, 2)

    def test_clear_unknown_probe_is_noop(self):
        unit().clear_history(12345)


class TestQueries:
    def test_free_channels(self):
        u = unit()
        u.reserve(0, 0, 1)
        u.mark_faulty(1, 0)
        assert u.free_channels(0) == [2, 3]
        assert u.free_channels(1) == [0, 1, 2, 3]

    def test_reserved_channels(self):
        u = unit()
        u.reserve(0, 0, 1)
        u.reserve(2, 1, 2)
        assert sorted(u.reserved_channels()) == [(0, 0), (2, 1)]
