"""Tests for wave-pipelined transfers: rate, window, pipeline timing."""

import math

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.circuits.circuit import Circuit, CircuitState
from repro.circuits.wave import WaveTransfer
from repro.errors import ProtocolError
from repro.network.message import Message


def make_transfer(length=64, rate=4.0, window=256, pipe=4, start=0):
    msg = Message(msg_id=1, src=0, dst=9, length=length, created=0)
    circuit = Circuit(circuit_id=1, src=0, dst=9, switch=0,
                      state=CircuitState.ESTABLISHED)
    circuit.path = [(i, 0) for i in range(pipe)]
    return WaveTransfer(
        message=msg,
        circuit=circuit,
        rate=rate,
        window=window,
        pipe_delay=pipe,
        start_cycle=start,
    )


def run_to_completion(transfer, start=0, limit=100_000):
    cycle = start
    while not transfer.done:
        transfer.advance(cycle)
        cycle += 1
        if cycle - start > limit:
            raise AssertionError("transfer never completed")
    return cycle


class TestValidation:
    def test_zero_rate_rejected(self):
        with pytest.raises(ProtocolError):
            make_transfer(rate=0.0)

    def test_zero_window_rejected(self):
        with pytest.raises(ProtocolError):
            make_transfer(window=0)


class TestTiming:
    def test_unthrottled_send_time(self):
        """With a large window, send time is ceil(L / rate)."""
        t = make_transfer(length=64, rate=4.0, window=1024, pipe=4)
        run_to_completion(t)
        send_cycles = t.last_sent_cycle - 0 + 1
        assert send_cycles == math.ceil(64 / 4.0)

    def test_delivery_lags_by_pipeline_fill(self):
        t = make_transfer(length=64, rate=4.0, window=1024, pipe=7)
        run_to_completion(t)
        assert t.delivered_at == t.last_sent_cycle + 7

    def test_completion_lags_by_round_trip(self):
        t = make_transfer(length=64, rate=4.0, window=1024, pipe=7)
        end = run_to_completion(t)
        assert t.completed_at >= t.last_sent_cycle + 14

    def test_fractional_rate_accumulates(self):
        """rate 0.5 -> one flit every two cycles."""
        t = make_transfer(length=4, rate=0.5, window=64, pipe=1)
        sent_at = []
        cycle = 0
        while t.sent < 4:
            if t.advance(cycle):
                sent_at.append(cycle)
            cycle += 1
        deltas = [b - a for a, b in zip(sent_at, sent_at[1:])]
        assert all(d == 2 for d in deltas)

    def test_window_throttles_long_circuit(self):
        """window < rate * rtt must slow the transfer down."""
        fast = make_transfer(length=256, rate=4.0, window=1024, pipe=8)
        slow = make_transfer(length=256, rate=4.0, window=16, pipe=8)
        fast_end = run_to_completion(fast)
        slow_end = run_to_completion(slow)
        assert slow.last_sent_cycle > fast.last_sent_cycle
        # Steady state: at most `window` flits per RTT.
        rtt = 16
        min_cycles = (256 / 16 - 1) * rtt
        assert slow.last_sent_cycle >= min_cycles

    def test_in_flight_never_exceeds_window(self):
        t = make_transfer(length=200, rate=4.0, window=12, pipe=5)
        cycle = 0
        while not t.done:
            t.advance(cycle)
            assert t.sent - t.acked <= 12
            cycle += 1

    def test_single_flit_message(self):
        t = make_transfer(length=1, rate=4.0, window=8, pipe=3)
        run_to_completion(t)
        assert t.delivered_at == t.last_sent_cycle + 3

    def test_zero_pipe_delay(self):
        t = make_transfer(length=8, rate=2.0, window=8, pipe=0)
        run_to_completion(t)
        assert t.delivered_at == t.last_sent_cycle

    def test_done_transfer_stops_counting(self):
        t = make_transfer(length=4, rate=4.0, window=64, pipe=1)
        end = run_to_completion(t)
        assert t.advance(end + 1) == 0


class TestProperties:
    @given(
        length=st.integers(1, 400),
        rate=st.sampled_from([0.5, 1.0, 2.0, 4.0, 8.0]),
        window=st.integers(1, 64),
        pipe=st.integers(0, 12),
    )
    def test_always_completes_and_monotone(self, length, rate, window, pipe):
        t = make_transfer(length=length, rate=rate, window=window, pipe=pipe)
        cycle = 0
        prev_sent = 0
        while not t.done:
            t.advance(cycle)
            assert t.sent >= prev_sent
            assert t.acked <= t.sent <= length
            assert t.sent - t.acked <= window
            prev_sent = t.sent
            cycle += 1
            assert cycle < 100_000
        assert t.sent == length
        assert t.delivered_at == t.last_sent_cycle + pipe
        assert t.completed_at >= t.delivered_at

    @given(
        length=st.integers(1, 300),
        pipe=st.integers(0, 10),
    )
    def test_lower_bound_on_send_time(self, length, pipe):
        """Never faster than ceil(L / rate) regardless of window."""
        t = make_transfer(length=length, rate=4.0, window=32, pipe=pipe)
        run_to_completion(t)
        assert t.last_sent_cycle + 1 >= math.ceil(length / 4.0)


class TestRecommendedWindow:
    def test_covers_worst_case_round_trip(self):
        from repro.circuits.wave import recommended_window
        from repro.sim.config import WaveConfig
        from repro.topology import Mesh

        topo = Mesh((8, 8))
        config = WaveConfig(wave_clock_ratio=4.0, wire_delay=1)
        window = recommended_window(topo, config)
        # Diameter 14, rtt 28, rate 4 -> at least 112 flits in flight.
        assert window >= 112

    def test_no_throttling_at_recommended_window(self):
        """A diameter-length transfer at the recommended window matches the
        unthrottled send time exactly."""
        import math

        from repro.circuits.wave import recommended_window
        from repro.sim.config import WaveConfig
        from repro.topology import Mesh

        topo = Mesh((8, 8))
        config = WaveConfig(wave_clock_ratio=4.0, wire_delay=1)
        window = recommended_window(topo, config)
        pipe = topo.diameter() * config.wire_delay
        t = make_transfer(length=512, rate=4.0, window=window, pipe=pipe)
        run_to_completion(t)
        assert t.last_sent_cycle + 1 == math.ceil(512 / 4.0)

    def test_scales_with_wire_delay(self):
        from repro.circuits.wave import recommended_window
        from repro.sim.config import WaveConfig
        from repro.topology import Mesh

        topo = Mesh((4, 4))
        slow = recommended_window(topo, WaveConfig(wire_delay=3))
        fast = recommended_window(topo, WaveConfig(wire_delay=1))
        assert slow > fast
