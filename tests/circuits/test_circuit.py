"""Tests for circuits and the circuit table."""

import pytest

from repro.circuits.circuit import Circuit, CircuitState, CircuitTable
from repro.errors import ProtocolError


class TestCircuit:
    def test_initial_state(self):
        c = Circuit(circuit_id=1, src=0, dst=5, switch=0)
        assert c.state is CircuitState.SETTING_UP
        assert not c.in_use
        assert c.length == 0

    def test_hop_channels_include_switch(self):
        c = Circuit(circuit_id=1, src=0, dst=2, switch=3)
        c.path = [(0, 0), (1, 0)]
        assert c.hop_channels() == [(0, 0, 3), (1, 0, 3)]

    def test_node_after(self):
        c = Circuit(circuit_id=1, src=0, dst=2, switch=0)
        c.path = [(0, 0), (1, 0)]
        assert c.node_after(0, lambda n, p: n + 1) == 1

    def test_node_after_unconnected_raises(self):
        c = Circuit(circuit_id=1, src=0, dst=2, switch=0)
        c.path = [(0, 0)]
        with pytest.raises(ProtocolError):
            c.node_after(0, lambda n, p: None)


class TestCircuitTable:
    def test_create_assigns_unique_ids(self):
        t = CircuitTable()
        a = t.create(0, 1, 0)
        b = t.create(0, 2, 0)
        assert a.circuit_id != b.circuit_id
        assert t.get(a.circuit_id) is a

    def test_get_unknown_raises(self):
        with pytest.raises(ProtocolError):
            CircuitTable().get(99)

    def test_live_and_established_filters(self):
        t = CircuitTable()
        a = t.create(0, 1, 0)
        b = t.create(0, 2, 0)
        c = t.create(0, 3, 0)
        a.state = CircuitState.ESTABLISHED
        b.state = CircuitState.DEAD
        assert set(x.circuit_id for x in t.live_circuits()) == {
            a.circuit_id, c.circuit_id
        }
        assert t.established() == [a]

    def test_channel_exclusivity_detects_double_claim(self):
        t = CircuitTable()
        a = t.create(0, 1, 0)
        b = t.create(2, 1, 0)
        a.path = [(0, 0), (1, 0)]
        b.path = [(1, 0)]  # same channel (1, 0) on the same switch
        with pytest.raises(ProtocolError):
            t.channels_in_use()

    def test_channel_map_when_disjoint(self):
        t = CircuitTable()
        a = t.create(0, 1, 0)
        b = t.create(2, 1, 1)
        a.path = [(1, 0)]
        b.path = [(1, 0)]  # same link, *different switch* -> fine
        owners = t.channels_in_use()
        assert owners[(1, 0, 0)] == a.circuit_id
        assert owners[(1, 0, 1)] == b.circuit_id

    def test_dead_circuits_ignored_for_exclusivity(self):
        t = CircuitTable()
        a = t.create(0, 1, 0)
        b = t.create(2, 1, 0)
        a.path = [(1, 0)]
        b.path = [(1, 0)]
        a.state = CircuitState.DEAD
        owners = t.channels_in_use()
        assert owners[(1, 0, 0)] == b.circuit_id
