"""E4 -- CLRP phase outcome distribution vs circuit-cache pressure.

Section 3.1 defines CLRP's three-phase structure; this experiment shows
how establishment outcomes shift as the Circuit Cache starves.  Every
node interleaves messages to ``PARTNERS`` (4) fixed nearby partners --
the working set a cache smaller than 4 cannot hold -- and we report, per
cache size, how messages travelled:

* circuit_hit        -- reused a cached circuit (the protocol's payoff),
* circuit_new        -- phase 1 established with Force clear,
* circuit_forced     -- phase 2 had to tear a victim down,
* wormhole_fallback  -- phase 3 (or cache-full) fallback through S0,

plus the eviction and victim-release counter totals.

Shape to reproduce: a cache covering the working set serves it from
hits; below the working-set size the cache thrashes exactly like its
memory-hierarchy namesake -- every message to a rotated-out partner
evicts, re-establishes, and drives latency up.
"""

from repro.analysis.report import format_table
from repro.network.network import Network
from repro.sim.engine import Simulator
from repro.sim.rng import SimRandom

from benchmarks.common import clrp_config, fresh_factory, once, publish

CACHE_SIZES = [1, 2, 4, 16]
PARTNERS = 4
LENGTH = 32
GAP = 120  # cycles between a node's consecutive messages
ROUNDS = 30  # times each node cycles through its partner set


def working_set_workload(topology, rng):
    """Every node round-robins messages over 4 fixed nearby partners."""
    factory = fresh_factory()
    stream = rng.stream("partners")
    messages = []
    for src in range(topology.num_nodes):
        nearby = sorted(
            (n for n in range(topology.num_nodes) if n != src),
            key=lambda n: (topology.distance(src, n), n),
        )[: PARTNERS * 2]
        partners = [nearby[stream.randrange(len(nearby))] for _ in range(PARTNERS)]
        # De-duplicate while keeping PARTNERS entries.
        partners = list(dict.fromkeys(partners))
        while len(partners) < PARTNERS:
            partners.append(nearby[len(partners)])
        for i in range(ROUNDS * PARTNERS):
            dst = partners[i % PARTNERS]
            messages.append(factory.make(src, dst, LENGTH, i * GAP))
    messages.sort(key=lambda m: (m.created, m.msg_id))
    return messages


def run_one(cache_size):
    # k=4 wave switches: enough channel capacity that the Circuit Cache,
    # not the network, is the binding constraint under study here (E8
    # sweeps k itself).
    config = clrp_config(circuit_cache_size=cache_size, num_switches=4)
    net = Network(config)
    workload = working_set_workload(net.topology, SimRandom(13))
    Simulator(net, workload).run(100_000)
    total = len(net.stats.messages)
    modes = net.stats.mode_breakdown()

    def frac(key):
        return modes.get(key, 0) / total

    return (
        cache_size,
        frac("circuit_hit"),
        frac("circuit_new"),
        frac("circuit_forced"),
        frac("wormhole_fallback"),
        net.stats.count("clrp.cache_evictions"),
        net.stats.count("clrp.victim_releases_requested"),
        net.stats.mean_latency(),
    )


def run_experiment():
    return [run_one(size) for size in CACHE_SIZES]


def test_e4_clrp_phase_distribution(benchmark):
    rows = once(benchmark, run_experiment)
    table = format_table(
        ["cache size", "hit", "phase1", "phase2 (forced)", "fallback",
         "evictions", "victim releases", "mean latency"],
        rows,
    )
    publish("E4", "CLRP phase outcome distribution vs circuit-cache size "
                  "(8x8 mesh, 4-partner working set per node)", table)

    by_size = {r[0]: r for r in rows}
    # A cache covering the working set serves it almost all from hits.
    assert by_size[16][1] > 0.8
    assert by_size[4][1] > 0.8
    # Hits grow with cache size up to the working-set size.
    hits = [by_size[s][1] for s in CACHE_SIZES]
    assert hits == sorted(hits)
    # Below the working set the cache thrashes: far more evictions.
    assert by_size[1][5] > by_size[4][5] * 5
    # Latency degrades as the cache starves.
    assert by_size[1][7] > by_size[4][7]
    # Phase machinery observable across the sweep.
    assert any(r[2] > 0 for r in rows), "phase 1 never exercised"
