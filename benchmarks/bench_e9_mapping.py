"""E9 -- process placement: spatial locality as a protocol input.

Section 1: "Latency can also be reduced by using an appropriate mapping
of processes to processors, exploiting spatial locality in
communications."  Wave switching leans on that placement twice: short
circuits are cheaper to establish (fewer control-channel hops) and hold
fewer channels (less Force-bit contention).

A rank-space stencil application (every rank talks to its logical
neighbours each iteration) is placed three ways on the 8x8 mesh --
identity (perfect), 2x2 blocks (good), random (worst practice) -- and run
under CLRP and the wormhole baseline.

Shape to reproduce: mean communication distance degrades identity < block
< random; CLRP latency tracks it; and CLRP's *relative* advantage over
wormhole survives even the bad mapping (circuits amortise the longer
paths), which is the paper's pitch that the techniques compose.
"""

from repro.analysis.report import format_table
from repro.network.network import Network
from repro.sim.engine import Simulator
from repro.sim.rng import SimRandom
from repro.traffic.mapping import (
    BlockMapping,
    IdentityMapping,
    RandomMapping,
    mean_communication_distance,
    remap_workload,
)
from repro.traffic.workloads import stencil_workload

from benchmarks.common import clrp_config, fresh_factory, once, publish, wormhole_config

PHASES = 12
PHASE_GAP = 600
HALO = 48


def build_mapping(name, topology):
    if name == "identity":
        return IdentityMapping(topology.num_nodes)
    if name == "block2x2":
        return BlockMapping(topology, 2, 2)
    return RandomMapping(topology.num_nodes, SimRandom(17))


def run_one(mapping_name, protocol):
    config = clrp_config() if protocol == "clrp" else wormhole_config()
    net = Network(config)
    rank_msgs = stencil_workload(
        fresh_factory(), net.topology, phases=PHASES, phase_gap=PHASE_GAP,
        length=HALO,
    )
    mapping = build_mapping(mapping_name, net.topology)
    msgs = remap_workload(rank_msgs, mapping)
    distance = mean_communication_distance(msgs, net.topology)
    result = Simulator(net, msgs).run(500_000)
    assert result.delivered == result.injected
    return distance, net.stats.mean_latency()


def run_experiment():
    rows = []
    for mapping_name in ("identity", "block2x2", "random"):
        distance, clrp_lat = run_one(mapping_name, "clrp")
        _, wh_lat = run_one(mapping_name, "wormhole")
        rows.append((mapping_name, distance, wh_lat, clrp_lat,
                     wh_lat / clrp_lat))
    return rows


def test_e9_process_mapping(benchmark):
    rows = once(benchmark, run_experiment)
    table = format_table(
        ["mapping", "mean distance", "wormhole latency", "CLRP latency",
         "CLRP advantage"],
        rows,
    )
    publish("E9", "process placement and spatial locality "
                  "(rank-space stencil on the 8x8 mesh)", table)

    by_name = {r[0]: r for r in rows}
    # Placement quality orders communication distance...
    assert (by_name["identity"][1] < by_name["block2x2"][1]
            < by_name["random"][1])
    # ...and CLRP latency tracks it.
    assert by_name["identity"][3] < by_name["random"][3]
    # Circuits keep their edge even under the bad mapping.
    assert all(r[4] > 1.0 for r in rows)
