"""E3 -- Short messages and circuit reuse.

Paper claim (section 1, citing [10]): "For short messages, wave switching
can only improve performance if circuits are reused."

Sixteen-flit messages under the spatio-temporal locality workload, with
both knobs swept: ``reuse`` (mean messages per partner before switching)
and ``spatial_decay`` (1.0 = partners uniform over the machine, 0.3 =
partners concentrated nearby, the regime good process mapping produces).

Shape to reproduce: without locality and without reuse CLRP *loses* to
wormhole (every short message pays a full circuit setup); as temporal
reuse grows the circuit-cache hit rate climbs and CLRP pulls ahead,
dramatically so when partners are also close (short circuits, little
channel pressure).
"""

from repro.analysis.report import format_table
from repro.network.network import Network
from repro.sim.engine import Simulator
from repro.sim.rng import SimRandom
from repro.traffic.locality import LocalityWorkloadBuilder

from benchmarks.common import clrp_config, fresh_factory, once, publish, wormhole_config

REUSES = [1, 4, 16, 64]
DECAYS = [1.0, 0.3]
LENGTH = 16
LOAD = 0.15
DURATION = 4000


def run_one(config, reuse, decay):
    net = Network(config)
    builder = LocalityWorkloadBuilder(net.topology, reuse=reuse,
                                      spatial_decay=decay)
    workload = builder.build(
        fresh_factory(),
        offered_load=LOAD,
        length=LENGTH,
        duration=DURATION,
        rng=SimRandom(8),
    )
    Simulator(net, workload).run(80_000)
    total = len(net.stats.messages)
    hits = net.stats.count("mode.circuit_hit")
    return net.stats.mean_latency(), (hits / total if total else 0.0)


def run_experiment():
    rows = []
    for decay in DECAYS:
        for reuse in REUSES:
            wh, _ = run_one(wormhole_config(), reuse, decay)
            wave, hit_rate = run_one(clrp_config(), reuse, decay)
            rows.append((decay, reuse, wh, wave, wh / wave, hit_rate))
    return rows


def test_e3_reuse_for_short_messages(benchmark):
    rows = once(benchmark, run_experiment)
    table = format_table(
        ["spatial decay", "reuse", "wormhole lat", "wave lat", "ratio",
         "cache hit rate"],
        rows,
    )
    publish("E3", "circuit reuse for short (16-flit) messages (8x8 mesh)",
            table)

    cell = {(r[0], r[1]): r for r in rows}
    # No spatial locality + no reuse: short messages are WORSE on circuits.
    assert cell[(1.0, 1)][4] < 1.0
    # Hit rate climbs with reuse in both regimes.
    for decay in DECAYS:
        hit_rates = [cell[(decay, r)][5] for r in REUSES]
        assert hit_rates == sorted(hit_rates)
        assert hit_rates[-1] > hit_rates[0] + 0.3
    # Locality + reuse: decisive win for wave switching.
    assert cell[(0.3, 64)][4] > 2.5
    # The win grows with reuse under spatial locality.
    ratios = [cell[(0.3, r)][4] for r in REUSES]
    assert ratios == sorted(ratios)
