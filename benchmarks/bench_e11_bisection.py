"""E11 -- "how best to use the bisection bandwidth resource".

Section 2 closes its multi-chip discussion with an open design question:
"The interesting design question then becomes how best to use the
bisection bandwidth resource that is determined by the packaging
technology."

We make the question runnable.  Three *equal-bisection* design points --
the same aggregate wires across the cut, divided differently:

* ``k=1`` full-width wave channels (one fat circuit per link),
* ``k=2`` half-width channels (two circuits per link, half the rate each),
* ``k=4`` quarter-width channels (four thin circuits per link),

are run against two workload archetypes:

* **few long streams** -- two node pairs across the machine exchanging
  1024-flit messages: raw per-circuit bandwidth is everything;
* **many short streams** -- every node streaming 48-flit messages to a
  fixed partner: concurrent reservability is everything.

Shape to reproduce: the winner *flips* -- full-width wins the few-long
case outright, while splitting wins the many-short case (too thin and
the per-circuit rate loss bites again, so the optimum is interior).
That is the paper's conclusion rendered as data: the right split
"depends on ... the applications".
"""

from repro.analysis.report import format_table
from repro.network.message import MessageFactory
from repro.network.network import Network
from repro.sim.config import NetworkConfig, WaveConfig
from repro.sim.engine import Simulator
from repro.topology.base import bisection_links
from repro.traffic.workloads import pair_stream_workload

from benchmarks.common import once, publish

DESIGN_POINTS = [(1, 1.0), (2, 0.5), (4, 0.25)]


def build_workload(kind):
    factory = MessageFactory()
    if kind == "few_long":
        pairs = [(0, 63), (7, 56)]
        return pair_stream_workload(
            factory, pairs, messages_per_pair=6, length=1024, gap=600
        )
    pairs = [(s, (s + 9) % 64) for s in range(64)]
    return pair_stream_workload(
        factory, pairs, messages_per_pair=6, length=48, gap=300
    )


def run_one(k, width, kind):
    config = NetworkConfig(
        dims=(8, 8),
        protocol="clrp",
        wave=WaveConfig(num_switches=k, channel_width_factor=width,
                        window=512),
    )
    net = Network(config)
    result = Simulator(net, build_workload(kind)).run(600_000)
    assert result.delivered == result.injected
    return net.stats.mean_latency()


def run_experiment():
    rows = []
    for k, width in DESIGN_POINTS:
        few = run_one(k, width, "few_long")
        many = run_one(k, width, "many_short")
        rows.append((f"k={k} width={width:g}", k * 4.0 * width, few, many))
    return rows


def test_e11_bisection_design_points(benchmark):
    rows = once(benchmark, run_experiment)
    table = format_table(
        ["design point", "aggregate rate/link", "few-long latency",
         "many-short latency"],
        rows,
    )
    publish("E11", "equal-bisection design points: k wave switches x "
                   "1/k channel width (8x8 mesh)", table)

    # All design points offer identical aggregate bandwidth per link.
    aggregates = {r[1] for r in rows}
    assert len(aggregates) == 1

    few = [r[2] for r in rows]
    many = [r[3] for r in rows]
    # Few long streams: the fat channel wins outright (monotone loss
    # as channels thin).
    assert few == sorted(few)
    # Many short streams: splitting beats the fat channel...
    assert min(many[1:]) < many[0]
    # ...but the thinnest split is not the best either (interior optimum).
    assert many[-1] > min(many)

    # Context: the bisection itself, for the report.
    from repro.topology import Mesh

    assert bisection_links(Mesh((8, 8))) == 16
