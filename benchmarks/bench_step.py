"""Stepping-core microbenchmark: reference vs active-set vs vectorized.

Standalone script (not a pytest benchmark): runs each scenario once per
stepping backend -- the original O(num_nodes) ``step_reference`` loop
(fast-forward off), the active-set ``step`` + idle fast-forward, and the
struct-of-arrays ``step_vectorized`` core -- and writes the measured
simulated-cycles-per-second and speedups to ``BENCH_step.json`` at the
repository root.

Scenarios:

* the bench_e2 CLRP configuration on the 8x8 mesh at low and saturating
  offered load (cool-down tails full of idle cycles: fast-forward and
  O(active) stepping territory), and
* a wormhole saturation run with adaptive routing and long worms, where
  every cycle is dense with blocked headers -- the workload the
  vectorized core's stall-parking is built for.

Wall times are best-of-``REPEATS`` per backend (interleaved), since
single runs on a shared machine scatter by 10-20%.  Every backend must
produce the identical simulation outcome before its timing counts.

Run with::

    PYTHONPATH=src:. python benchmarks/bench_step.py
"""

from __future__ import annotations

import dataclasses
import json
import time
from pathlib import Path

from repro.network.network import Network
from repro.sim.engine import Simulator
from repro.sim.rng import SimRandom
from repro.traffic.patterns import UniformPattern
from repro.traffic.workloads import uniform_workload

from benchmarks.common import NODES, clrp_config, fresh_factory, wormhole_config

DURATION = 4000
# Cool-down tail after injection stops: mostly idle cycles, exactly the
# region fast-forward and O(active) stepping are built for.  Real runs
# (drain-to-completion experiments, bursty traces) are full of this.
MAX_CYCLES = 60_000
BACKENDS = ("reference", "active", "vectorized")
REPEATS = 3

OUT_PATH = Path(__file__).resolve().parent.parent / "BENCH_step.json"


def run_once(config, load: float, length: int, backend: str) -> dict:
    net = Network(dataclasses.replace(config, backend=backend))
    workload = uniform_workload(
        fresh_factory(),
        UniformPattern(NODES),
        num_nodes=NODES,
        offered_load=load,
        length=length,
        duration=DURATION,
        rng=SimRandom(5),
    )
    sim = Simulator(net, workload, fast_forward=backend != "reference")
    start = time.perf_counter()
    result = sim.run(MAX_CYCLES)
    elapsed = time.perf_counter() - start
    return {
        "wall_seconds": round(elapsed, 4),
        "cycles": result.cycles,
        "cycles_per_second": round(result.cycles / elapsed, 1),
        "delivered": result.delivered,
        "injected": result.injected,
        "completed": result.completed,
        "work_counter": net.work_counter,
    }


def bench(config, load: float, length: int, label: str) -> dict:
    runs: dict[str, dict] = {}
    for _ in range(REPEATS):
        for backend in BACKENDS:
            run = run_once(config, load, length, backend)
            prev = runs.get(backend)
            if prev is None:
                runs[backend] = run
                continue
            # Identical simulation outcomes or the comparison is
            # meaningless -- across backends AND across repeats.
            for key in ("cycles", "delivered", "injected", "work_counter"):
                assert run[key] == prev[key], (
                    f"{label}/{backend}: {key} diverged:"
                    f" {run[key]} vs {prev[key]}"
                )
            if run["wall_seconds"] < prev["wall_seconds"]:
                runs[backend] = run
    reference, active, vectorized = (runs[b] for b in BACKENDS)
    for key in ("cycles", "delivered", "injected", "work_counter"):
        assert active[key] == reference[key] == vectorized[key], (
            f"{label}: {key} diverged across backends"
        )
    speedup_active = reference["wall_seconds"] / active["wall_seconds"]
    speedup_vec = reference["wall_seconds"] / vectorized["wall_seconds"]
    vec_vs_active = active["wall_seconds"] / vectorized["wall_seconds"]
    print(
        f"{label:>22}: reference {reference['cycles_per_second']:>9.0f} cyc/s"
        f"  active {active['cycles_per_second']:>9.0f} cyc/s"
        f"  vectorized {vectorized['cycles_per_second']:>9.0f} cyc/s"
        f"  (vec/active {vec_vs_active:.2f}x)"
    )
    return {
        "offered_load": load,
        "length": length,
        "reference": reference,
        "active": active,
        "vectorized": vectorized,
        "speedup": round(speedup_active, 2),
        "speedup_vectorized": round(speedup_vec, 2),
        "vectorized_vs_active": round(vec_vs_active, 2),
    }


def main() -> None:
    results = {
        "benchmark": "stepping core, 8x8 mesh, reference vs active-set vs"
        f" vectorized backends, {DURATION}-cycle injection + drain,"
        f" best-of-{REPEATS} wall times",
        "low_load": bench(clrp_config(), 0.05, 128, "clrp low load"),
        "saturation": bench(clrp_config(), 0.6, 128, "clrp saturation"),
        "wormhole_saturation": bench(
            wormhole_config(routing="adaptive"), 0.6, 256,
            "wormhole saturation",
        ),
    }
    OUT_PATH.write_text(json.dumps(results, indent=2) + "\n")
    print(f"wrote {OUT_PATH}")


if __name__ == "__main__":
    main()
