"""Stepping-core microbenchmark: cycles/sec, active-set vs reference loop.

Standalone script (not a pytest benchmark): runs the bench_e2 CLRP
configuration on the 8x8 mesh at low and saturating offered load, once
with the original O(num_nodes) ``step_reference`` loop (fast-forward
off) and once with the active-set ``step`` + idle fast-forward, and
writes the measured simulated-cycles-per-second and speedups to
``BENCH_step.json`` at the repository root.

Run with::

    PYTHONPATH=src:. python benchmarks/bench_step.py
"""

from __future__ import annotations

import json
import time
from pathlib import Path

from repro.network.network import Network
from repro.sim.engine import Simulator
from repro.sim.rng import SimRandom
from repro.traffic.patterns import UniformPattern
from repro.traffic.workloads import uniform_workload

from benchmarks.common import NODES, clrp_config, fresh_factory

LENGTH = 128
DURATION = 4000
# Cool-down tail after injection stops: mostly idle cycles, exactly the
# region fast-forward and O(active) stepping are built for.  Real runs
# (drain-to-completion experiments, bursty traces) are full of this.
MAX_CYCLES = 60_000

OUT_PATH = Path(__file__).resolve().parent.parent / "BENCH_step.json"


def run_once(load: float, *, active: bool) -> dict:
    net = Network(clrp_config())
    workload = uniform_workload(
        fresh_factory(),
        UniformPattern(NODES),
        num_nodes=NODES,
        offered_load=load,
        length=LENGTH,
        duration=DURATION,
        rng=SimRandom(5),
    )
    if not active:
        net.step = net.step_reference
    sim = Simulator(net, workload, fast_forward=active)
    start = time.perf_counter()
    result = sim.run(MAX_CYCLES)
    elapsed = time.perf_counter() - start
    return {
        "wall_seconds": round(elapsed, 4),
        "cycles": result.cycles,
        "cycles_per_second": round(result.cycles / elapsed, 1),
        "delivered": result.delivered,
        "injected": result.injected,
        "completed": result.completed,
        "work_counter": net.work_counter,
    }


def bench(load: float, label: str) -> dict:
    reference = run_once(load, active=False)
    active = run_once(load, active=True)
    # Identical simulation outcomes or the comparison is meaningless.
    for key in ("cycles", "delivered", "injected", "work_counter"):
        assert active[key] == reference[key], (
            f"{label}: {key} diverged: {active[key]} vs {reference[key]}"
        )
    speedup = reference["wall_seconds"] / active["wall_seconds"]
    print(
        f"{label:>10}: reference {reference['cycles_per_second']:>10.0f} cyc/s"
        f"  active {active['cycles_per_second']:>10.0f} cyc/s"
        f"  speedup {speedup:.2f}x"
    )
    return {
        "offered_load": load,
        "reference": reference,
        "active": active,
        "speedup": round(speedup, 2),
    }


def main() -> None:
    results = {
        "benchmark": "stepping core, 8x8 mesh CLRP (bench_e2 config), "
        f"{LENGTH}-flit messages, {DURATION}-cycle injection + drain",
        "low_load": bench(0.05, "low load"),
        "saturation": bench(0.6, "saturation"),
    }
    OUT_PATH.write_text(json.dumps(results, indent=2) + "\n")
    print(f"wrote {OUT_PATH}")


if __name__ == "__main__":
    main()
