"""E1 -- Zero-load latency vs message length: wave vs wormhole.

Paper claim (section 1/5, citing [10]): "wave switching is able to reduce
latency ... by a factor higher than three if messages are long enough
(>= 128 flits), even if circuits are not reused."

We send a single cold message (fresh circuit, no reuse) per length across
the full 8x8 mesh diagonal and compare against the wormhole baseline.
The shape to reproduce: wormhole wins for short messages (setup cost
dominates), the curves cross in the tens-of-flits range, and the wave
advantage grows towards ``wave_clock_ratio`` for long messages,
surpassing 3x once messages are long enough.
"""

from repro.analysis.report import format_table
from repro.network.network import Network
from repro.sim.engine import Simulator
from repro.traffic.workloads import pair_stream_workload

from benchmarks.common import clrp_config, fresh_factory, once, publish, wormhole_config

LENGTHS = [8, 16, 32, 64, 128, 256, 512, 1024]
SRC, DST = 0, 63  # full mesh diagonal: 14 hops


def cold_latency(config, length) -> float:
    net = Network(config)
    workload = pair_stream_workload(
        fresh_factory(), [(SRC, DST)], messages_per_pair=1, length=length, gap=1
    )
    Simulator(net, workload).run(200_000)
    return net.stats.mean_latency()


def run_experiment():
    rows = []
    for length in LENGTHS:
        wh = cold_latency(wormhole_config(), length)
        wave = cold_latency(clrp_config(), length)
        rows.append((length, wh, wave, wh / wave))
    return rows


def test_e1_latency_vs_length(benchmark):
    rows = once(benchmark, run_experiment)
    table = format_table(
        ["flits", "wormhole (cycles)", "wave cold (cycles)", "ratio"],
        rows,
    )
    publish("E1", "zero-load latency vs message length (8x8 mesh, cold circuits)",
            table)

    by_len = {r[0]: r for r in rows}
    # Short messages: wormhole wins (setup cost dominates).
    assert by_len[8][3] < 1.0
    # Crossover in the tens of flits.
    assert by_len[64][3] > 1.0
    # Long messages: >= 3x latency reduction, approaching the clock ratio.
    assert by_len[512][3] >= 3.0
    assert by_len[1024][3] >= 3.0
    # Monotonically improving with length.
    ratios = [r[3] for r in rows]
    assert ratios == sorted(ratios)
