"""E7 -- MB-m fault resilience.

Section 2: the probe "uses the MB-m protocol, being allowed to backtrack
if it cannot proceed forward. This protocol is very resilient to static
faults in the network, as indicated in [12]."

Two measurements over a fault sweep on the 8x8 mesh:

1. **Setup success** -- for every (src, src+diagonal) pair, can a probe
   establish a circuit, as a function of the fraction of failed links
   and the misroute budget ``m``?  Probes search around faults;
   backtracking plus misrouting should keep success high long after
   deterministic paths are gone.
2. **Wormhole comparison** -- the fraction of the same pairs whose
   dimension-order S0 path survives.  Deterministic wormhole routing has
   no alternative: one dead link on the unique path kills the pair.

Shape to reproduce: probe success degrades slowly with faults and
improves with ``m``; the deterministic-path survival rate falls far
faster -- the resilience gap the paper claims.
"""

from repro.analysis.report import format_table
from repro.circuits.circuit import CircuitState
from repro.circuits.plane import WavePlane
from repro.sim.config import WaveConfig
from repro.sim.stats import StatsCollector
from repro.topology import FaultSet, build_topology, derive_fault_rng
from repro.wormhole.routing import DimensionOrderRouting, wormhole_path_available

from benchmarks.common import once, publish

FAULT_FRACTIONS = [0.0, 0.05, 0.10, 0.20]
MISROUTE_BUDGETS = [0, 2, 4]
DIMS = (8, 8)


class _NullEngine:
    def probe_failed(self, probe, circuit, cycle):
        pass

    def circuit_established(self, circuit, cycle):
        pass


def pairs(num_nodes):
    return [(s, (s + num_nodes // 2 + 3) % num_nodes) for s in range(num_nodes)]


def probe_success_rate(topo, faults, m) -> float:
    ok = 0
    test_pairs = pairs(topo.num_nodes)
    for src, dst in test_pairs:
        plane = WavePlane(
            topo,
            WaveConfig(num_switches=1, misroute_budget=m),
            StatsCollector(),
            faults,
        )
        for n in range(topo.num_nodes):
            plane.register_engine(n, _NullEngine())
        circuit, _ = plane.launch_probe(src, dst, 0, force=False, cycle=0)
        cycle = 1
        while not plane.is_idle() and cycle < 20_000:
            plane.step(cycle)
            cycle += 1
        if circuit.state is CircuitState.ESTABLISHED:
            ok += 1
    return ok / len(test_pairs)


def dor_survival_rate(topo, faults) -> float:
    routing = DimensionOrderRouting(topo, 2)
    test_pairs = pairs(topo.num_nodes)
    ok = sum(
        1 for src, dst in test_pairs
        if wormhole_path_available(routing, src, dst, faults)
    )
    return ok / len(test_pairs)


def run_experiment():
    rows = []
    for fraction in FAULT_FRACTIONS:
        topo = build_topology("mesh", DIMS)
        faults = FaultSet(topo)
        faults.fail_random_links(fraction, derive_fault_rng(77))
        dor = dor_survival_rate(topo, faults)
        probe_rates = [probe_success_rate(topo, faults, m)
                       for m in MISROUTE_BUDGETS]
        rows.append((fraction, dor, *probe_rates))
    return rows


def test_e7_fault_resilience(benchmark):
    rows = once(benchmark, run_experiment)
    table = format_table(
        ["fault fraction", "DOR path survives",
         *(f"probe success m={m}" for m in MISROUTE_BUDGETS)],
        rows,
    )
    publish("E7", "static-fault resilience: MB-m circuit setup vs "
                  "deterministic wormhole paths (8x8 mesh)", table)

    by_fraction = {r[0]: r for r in rows}
    # No faults: everything works.
    assert by_fraction[0.0][1] == 1.0
    assert all(x == 1.0 for x in by_fraction[0.0][2:])
    # At 20% faults the deterministic paths are decimated...
    assert by_fraction[0.2][1] < 0.6
    # ...while backtracking probes with misrouting stay far more alive.
    assert by_fraction[0.2][-1] > by_fraction[0.2][1]
    # More misroute budget never hurts.
    for row in rows:
        budgets = list(row[2:])
        assert budgets == sorted(budgets)
