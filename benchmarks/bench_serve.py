"""Service-path benchmark: server submission vs direct batch, dedup rate.

Standalone script (not a pytest benchmark): runs the same campaign four
ways and measures wall-clock plus dedup effectiveness --

* **direct batch** -- ``run_jobs`` in-process, the `repro batch` path
  (the baseline the server must stay honest against),
* **cold server** -- the campaign submitted through the HTTP job
  server with an empty store: the full price of HTTP + scheduling +
  streaming around the same simulations,
* **warm server** -- the identical campaign resubmitted: every job
  resolves from the sqlite content-hash index, so this is the
  server-side dedup fast path (expect orders of magnitude faster),
* **second tenant** -- the same campaign from a different tenant:
  cross-tenant dedup means the hit rate stays 100%.

Asserts the server results are bit-identical to the direct batch and
writes throughput and hit-rate numbers to ``BENCH_serve.json`` at the
repository root.

Run with::

    PYTHONPATH=src:. python benchmarks/bench_serve.py
"""

from __future__ import annotations

import json
import os
import tempfile
import time
from pathlib import Path

from repro.client import Session
from repro.orchestrate import parse_campaign, run_jobs
from repro.service.server import ServiceConfig, ServiceThread

SEEDS = 12
LOADS = [0.05, 0.1, 0.2]
WORKERS = 4

OUT_PATH = Path(__file__).resolve().parent.parent / "BENCH_serve.json"

CAMPAIGN_DOC = {
    "name": "bench-serve",
    "defaults": {
        "topology": "mesh",
        "dims": "4x4",
        "protocol": "clrp",
        "max_cycles": 60_000,
        "workload": {"kind": "uniform", "load": 0.05,
                     "length": 32, "duration": 1500},
    },
    "grid": {
        "workload.load": LOADS,
        "seed": list(range(SEEDS)),
    },
}


def canonical(metrics) -> str:
    return json.dumps(metrics, sort_keys=True)


def main() -> None:
    name, specs = parse_campaign(CAMPAIGN_DOC)
    n = len(specs)
    cpus = os.cpu_count() or 1
    print(f"{n}-job campaign ({len(LOADS)} loads x {SEEDS} seeds), "
          f"host cpus={cpus}")

    start = time.perf_counter()
    outcomes = run_jobs(specs, jobs=1)
    direct_s = time.perf_counter() - start
    assert all(o.ok for o in outcomes)
    truth = {s.key(): o.metrics for s, o in zip(specs, outcomes)}
    print(f"  direct batch (jobs=1)     : {direct_s:6.2f}s "
          f"({n / direct_s:6.1f} jobs/s)")

    with tempfile.TemporaryDirectory() as tmp:
        config = ServiceConfig(
            port=0, store=f"sqlite:{Path(tmp) / 'store'}",
            workers=WORKERS, executor="process",
        )
        with ServiceThread(config) as url:
            session = Session(url, tenant="bench")

            start = time.perf_counter()
            cold = session.submit_campaign(CAMPAIGN_DOC).wait(timeout=600)
            cold_s = time.perf_counter() - start
            assert cold.status == "done"
            for row in cold.results():
                assert canonical(row["metrics"]) == canonical(
                    truth[row["key"]]
                ), f"server diverged from direct batch on {row['key']}"
            print(f"  cold server (workers={WORKERS})  : {cold_s:6.2f}s "
                  f"({n / cold_s:6.1f} jobs/s, bit-identical)")

            start = time.perf_counter()
            warm = session.submit_campaign(CAMPAIGN_DOC).wait(timeout=600)
            warm_s = time.perf_counter() - start
            warm_counts = warm.data["counts"]
            assert warm_counts["cached"] == n

            start = time.perf_counter()
            other = Session(url, tenant="other").submit_campaign(
                CAMPAIGN_DOC
            ).wait(timeout=600)
            tenant_s = time.perf_counter() - start
            assert other.data["counts"]["cached"] == n

            stats = session.store_stats()

    executed = stats["executed"]
    hits = stats["cache_hits"]
    hit_rate = hits / (hits + executed)
    print(f"  warm server               : {warm_s:6.2f}s "
          f"({n / warm_s:6.1f} jobs/s, 100% cached)")
    print(f"  second tenant             : {tenant_s:6.2f}s "
          f"(cross-tenant dedup, 100% cached)")
    print(f"  executed {executed}, cache hits {hits} "
          f"(hit rate {hit_rate:.1%}); "
          f"warm speedup over cold {cold_s / warm_s:.0f}x")

    results = {
        "benchmark": (
            f"job service, {n}-job CLRP campaign on 4x4 mesh "
            f"({len(LOADS)} loads x {SEEDS} seeds), submitted via the "
            f"HTTP client vs direct run_jobs"
        ),
        "host_cpus": cpus,
        "jobs": n,
        "workers": WORKERS,
        "direct_batch_wall_seconds": round(direct_s, 3),
        "cold_server_wall_seconds": round(cold_s, 3),
        "warm_server_wall_seconds": round(warm_s, 3),
        "second_tenant_wall_seconds": round(tenant_s, 3),
        "direct_jobs_per_second": round(n / direct_s, 1),
        "cold_jobs_per_second": round(n / cold_s, 1),
        "warm_jobs_per_second": round(n / warm_s, 1),
        "executed": executed,
        "cache_hits": hits,
        "dedup_hit_rate": round(hit_rate, 4),
        "warm_speedup_over_cold": round(cold_s / warm_s, 1),
        "bit_identical_server_vs_direct": True,
        "note": (
            "cold server wall-clock includes HTTP framing, fair "
            "scheduling and result streaming around the same "
            "execute_job calls; with >= 2 usable cores the process-pool "
            "workers make it faster than the serial direct batch. warm "
            "and second-tenant runs execute nothing: every spec resolves "
            "from the sqlite content-hash index (100% dedup)"
        ),
    }
    OUT_PATH.write_text(json.dumps(results, indent=2) + "\n")
    print(f"wrote {OUT_PATH}")


if __name__ == "__main__":
    main()
