"""E10 -- the multi-chip scalability argument of section 2.

"For very high performance, several switches per node can be used, each
one being implemented in its own chip. In this case, channel bandwidth
does not decrease when the number of switches increases ... As a
consequence, scalability is excellent because the number of switches
(chips) per node can increase as network size increases, thus
compensating the higher average distance traveled by messages."

We grow the mesh (4x4 -> 6x6 -> 8x8 -> 10x10) under a locality workload
whose *absolute* reach grows with the machine, and compare:

* CLRP with ``k`` **scaled** with network radius (1, 2, 2, 3) -- the
  paper's multi-chip design point;
* CLRP with ``k`` **fixed** at 1 -- the pin-limited single-chip strawman;
* the wormhole baseline.

Shape to reproduce: fixed-k CLRP chokes progressively on circuit-channel
contention as the circuit population grows with the machine, while
scaled-k CLRP holds latency flat -- the compensation effect the paper
argues for.  (Wormhole latency stays roughly flat here too: the locality
workload keeps distances bounded; the scalability pressure lands
precisely on the *circuit channel pool*, which is what k controls.)
"""

from repro.analysis.report import format_table
from repro.network.message import MessageFactory
from repro.network.network import Network
from repro.sim.config import NetworkConfig, WaveConfig, WormholeConfig
from repro.sim.engine import Simulator
from repro.sim.rng import SimRandom
from repro.traffic.locality import LocalityWorkloadBuilder

from benchmarks.common import once, publish

SIZES = [(4, 4), (6, 6), (8, 8), (10, 10)]
SCALED_K = {4: 1, 6: 2, 8: 2, 10: 3}
LOAD = 0.2
LENGTH = 32
DURATION = 2500


def run_one(dims, protocol, k=None):
    wave = None
    if protocol == "clrp":
        wave = WaveConfig(num_switches=k, circuit_cache_size=4)
    config = NetworkConfig(
        dims=dims,
        protocol=protocol,
        wormhole=WormholeConfig(),
        wave=wave,
    )
    net = Network(config)
    builder = LocalityWorkloadBuilder(net.topology, reuse=10.0,
                                      spatial_decay=0.6)
    workload = builder.build(
        MessageFactory(),
        offered_load=LOAD,
        length=LENGTH,
        duration=DURATION,
        rng=SimRandom(23),
    )
    result = Simulator(net, workload).run(400_000)
    assert result.delivered == result.injected
    return net.stats.mean_latency()


def run_experiment():
    rows = []
    for dims in SIZES:
        radix = dims[0]
        wh = run_one(dims, "wormhole")
        fixed = run_one(dims, "clrp", k=1)
        scaled = run_one(dims, "clrp", k=SCALED_K[radix])
        rows.append((f"{radix}x{radix}", wh, fixed, scaled,
                     SCALED_K[radix]))
    return rows


def test_e10_scalability(benchmark):
    rows = once(benchmark, run_experiment)
    table = format_table(
        ["machine", "wormhole latency", "CLRP k=1", "CLRP k scaled",
         "scaled k"],
        rows,
    )
    publish("E10", "scalability: wave switches per node grown with the "
                   "machine (locality workload, load 0.2)", table)

    first, last = rows[0], rows[-1]
    # Scaled-k CLRP latency grows far slower than wormhole latency.
    wh_growth = last[1] / first[1]
    scaled_growth = last[3] / first[3]
    assert scaled_growth < wh_growth
    # At the largest machine, scaling k beats keeping k=1.
    assert last[3] <= last[2]
    # And circuits beat wormhole at every size.
    for row in rows:
        assert row[3] < row[1]
