"""Shared infrastructure for the benchmark harness.

Each ``bench_e*.py`` file regenerates one experiment from DESIGN.md's
index (E1..E8).  Conventions:

* every benchmark runs its experiment once under ``benchmark.pedantic``
  (these are *reproduction* runs, not micro-benchmarks: one round is the
  measurement);
* the resulting table -- the same rows/series the paper's evaluation
  reasons about -- is printed and also written to
  ``benchmarks/results/<id>.txt`` so EXPERIMENTS.md can embed it;
* shape assertions encode the paper's qualitative claims (who wins, by
  roughly what factor, where crossovers fall), scaled to our 8x8 mesh
  substrate.

Note on scale: the paper's companion evaluation used larger machines; we
run 8x8 (64-node) meshes so the full harness stays in CI-friendly time.
Factors quoted in EXPERIMENTS.md are measured at this scale.
"""

from __future__ import annotations

from pathlib import Path

from repro.network.message import MessageFactory
from repro.sim.config import NetworkConfig, WaveConfig, WormholeConfig

RESULTS_DIR = Path(__file__).parent / "results"

MESH_8X8 = (8, 8)
NODES = 64


def wormhole_config(dims=MESH_8X8, vcs=2, routing="dor", seed=0) -> NetworkConfig:
    return NetworkConfig(
        dims=dims,
        protocol="wormhole",
        wave=None,
        wormhole=WormholeConfig(vcs=vcs, routing=routing),
        seed=seed,
    )


def clrp_config(dims=MESH_8X8, seed=0, wormhole=None, **wave_kwargs) -> NetworkConfig:
    return NetworkConfig(
        dims=dims,
        protocol="clrp",
        wormhole=wormhole if wormhole is not None else WormholeConfig(),
        wave=WaveConfig(**wave_kwargs),
        seed=seed,
    )


def carp_config(dims=MESH_8X8, seed=0, **wave_kwargs) -> NetworkConfig:
    return NetworkConfig(
        dims=dims,
        protocol="carp",
        wave=WaveConfig(**wave_kwargs),
        seed=seed,
    )


def fresh_factory() -> MessageFactory:
    return MessageFactory()


def publish(experiment_id: str, title: str, table: str) -> None:
    """Print the experiment table and persist it under results/."""
    RESULTS_DIR.mkdir(exist_ok=True)
    text = f"{experiment_id}: {title}\n\n{table}\n"
    (RESULTS_DIR / f"{experiment_id.lower()}.txt").write_text(text)
    print("\n" + text)


def once(benchmark, fn):
    """Run ``fn`` exactly once under pytest-benchmark and return its value."""
    return benchmark.pedantic(fn, rounds=1, iterations=1)
