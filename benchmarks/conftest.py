"""Benchmark collection hooks.

Every ``bench_e*.py`` experiment reproduction is a multi-second full-system
run; they dominate the suite's wall-clock (~2 minutes of a ~2.5 minute
run).  Mark them all ``slow`` so the default tier-1 invocation
(``pytest``, whose addopts carry ``-m 'not slow'``) skips them; the
nightly full run (``pytest -m ""``) still exercises everything.
"""

from pathlib import Path

import pytest

BENCH_DIR = Path(__file__).parent.resolve()


def pytest_collection_modifyitems(items):
    # The hook receives the whole session's items; only mark ours.
    for item in items:
        if BENCH_DIR in Path(str(item.fspath)).resolve().parents:
            item.add_marker(pytest.mark.slow)
