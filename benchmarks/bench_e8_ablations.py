"""E8 -- Ablations over the design parameters the paper calls out.

Section 2/5: "Several parameters can be adjusted, including the number of
fast switches, the number of virtual channels for wormhole switching, and
the routing protocols ..."; section 2 also discusses the windowing
protocol and channel splitting; section 3 leaves the replacement
algorithm open.  Four sweeps:

* **E8a** -- number of wave switches ``k`` under concurrent-circuit
  pressure: more switches = more circuit channels per link = fewer Force
  steals.
* **E8b** -- wave clock ratio: the long-message latency advantage tracks
  the achievable wave/base clock ratio (the Spice-model substitution knob
  from DESIGN.md).
* **E8c** -- end-to-end window: too small a window for the ack round trip
  throttles circuits exactly as the paper's "deeper buffers" discussion
  predicts.
* **E8d** -- replacement algorithms: with a skewed working set one slot
  short, recency/frequency policies beat FIFO/random.
"""

from repro.analysis.report import format_table
from repro.network.network import Network
from repro.sim.engine import Simulator
from repro.sim.rng import SimRandom
from repro.traffic.workloads import pair_stream_workload

from benchmarks.common import clrp_config, fresh_factory, once, publish

DIAG = (0, 63)


def zero_load_latency(config, length=512):
    net = Network(config)
    workload = pair_stream_workload(
        fresh_factory(), [DIAG], messages_per_pair=1, length=length, gap=1
    )
    Simulator(net, workload).run(300_000)
    return net.stats.mean_latency()


# -- E8a: number of wave switches -------------------------------------------


def working_set_run(k):
    """Every node streams to 2 interleaved partners; count Force steals."""
    config = clrp_config(num_switches=k, circuit_cache_size=4)
    net = Network(config)
    factory = fresh_factory()
    stream = SimRandom(55).stream("p")
    messages = []
    for src in range(64):
        partners = []
        while len(partners) < 2:
            cand = stream.randrange(64)
            if cand != src and cand not in partners:
                partners.append(cand)
        for i in range(40):
            messages.append(factory.make(src, partners[i % 2], 32, i * 150))
    messages.sort(key=lambda m: (m.created, m.msg_id))
    Simulator(net, messages).run(200_000)
    total = len(net.stats.messages)
    hits = net.stats.count("mode.circuit_hit")
    return (
        k,
        net.stats.mean_latency(),
        hits / total,
        net.stats.count("clrp.victim_releases_requested"),
        net.stats.count("clrp.phase3_fallbacks"),
    )


def test_e8a_number_of_wave_switches(benchmark):
    rows = once(benchmark, lambda: [working_set_run(k) for k in (1, 2, 4)])
    table = format_table(
        ["k (wave switches)", "mean latency", "hit rate", "victim releases",
         "phase-3 fallbacks"],
        rows,
    )
    publish("E8a", "ablation: number of wave switches k "
                   "(8x8 mesh, 2 concurrent partners per node)", table)
    by_k = {r[0]: r for r in rows}
    # More switches -> fewer forced steals and better reuse.
    assert by_k[4][3] < by_k[1][3]
    assert by_k[4][2] >= by_k[1][2]
    assert by_k[4][1] <= by_k[1][1]


# -- E8b: wave clock ratio ----------------------------------------------------


def test_e8b_wave_clock_ratio(benchmark):
    def sweep():
        rows = []
        for ratio in (1.0, 2.0, 4.0, 8.0):
            lat = zero_load_latency(clrp_config(wave_clock_ratio=ratio))
            rows.append((ratio, lat))
        return rows

    rows = once(benchmark, sweep)
    table = format_table(["wave clock ratio", "512-flit latency (cycles)"], rows)
    publish("E8b", "ablation: wave-pipelining clock ratio "
                   "(zero-load 512-flit message over the mesh diagonal)",
            table)
    latencies = [r[1] for r in rows]
    # Faster wave clock monotonically reduces long-message latency...
    assert latencies == sorted(latencies, reverse=True)
    # ...with diminishing returns (setup + pipeline fill do not scale).
    gain_low = latencies[0] / latencies[1]
    gain_high = latencies[2] / latencies[3]
    assert gain_low > gain_high


# -- E8c: end-to-end window ---------------------------------------------------


def test_e8c_window_size(benchmark):
    def sweep():
        rows = []
        for window in (8, 32, 128, 512):
            lat = zero_load_latency(clrp_config(window=window))
            rows.append((window, lat))
        return rows

    rows = once(benchmark, sweep)
    table = format_table(["window (flits)", "512-flit latency (cycles)"], rows)
    publish("E8c", "ablation: end-to-end window vs ack round trip "
                   "(zero-load 512-flit message, 14-hop circuit)", table)
    by_window = {r[0]: r for r in rows}
    # The diagonal circuit has rtt = 28 cycles at rate 4: windows below
    # ~112 flits throttle the stream, deeper windows change nothing.
    assert by_window[8][1] > by_window[128][1] * 2
    assert abs(by_window[128][1] - by_window[512][1]) < 0.15 * by_window[512][1]


# -- E8d: replacement algorithms ---------------------------------------------


def replacement_run(policy):
    """Skewed working set one slot over capacity: policies diverge."""
    config = clrp_config(num_switches=4, circuit_cache_size=2,
                         replacement=policy)
    net = Network(config)
    factory = fresh_factory()
    stream = SimRandom(91).stream("d")
    messages = []
    for src in range(64):
        partners = []
        while len(partners) < 3:
            cand = stream.randrange(64)
            if cand != src and cand not in partners:
                partners.append(cand)
        hot = partners[0]
        for i in range(60):
            # 70% of traffic to the hot partner, the rest alternating.
            if stream.random() < 0.7:
                dst = hot
            else:
                dst = partners[1 + (i % 2)]
            messages.append(factory.make(src, dst, 32, i * 120))
    messages.sort(key=lambda m: (m.created, m.msg_id))
    Simulator(net, messages).run(300_000)
    total = len(net.stats.messages)
    hits = net.stats.count("mode.circuit_hit")
    return (
        policy,
        hits / total,
        net.stats.count("clrp.cache_evictions"),
        net.stats.mean_latency(),
    )


def test_e8d_replacement_policies(benchmark):
    rows = once(
        benchmark,
        lambda: [replacement_run(p) for p in ("lru", "lfu", "fifo", "random")],
    )
    table = format_table(
        ["policy", "hit rate", "evictions", "mean latency"], rows
    )
    publish("E8d", "ablation: Circuit Cache replacement algorithms "
                   "(skewed 3-partner working set, 2-entry cache)", table)
    by_policy = {r[0]: r for r in rows}
    # Frequency-aware LFU must protect the hot partner at least as well
    # as FIFO, which evicts it blindly by age.
    assert by_policy["lfu"][1] >= by_policy["fifo"][1]
    # All policies keep the network functional (sanity floor).
    assert all(r[1] > 0.3 for r in rows)


# -- E8e: CLRP protocol variants (section 3.1's simplification menu) ----------


def variant_run(variant):
    """Contended locality traffic: setup latency vs disruption trade-off."""
    from repro.traffic.locality import LocalityWorkloadBuilder

    config = clrp_config(num_switches=2, circuit_cache_size=4,
                         clrp_variant=variant)
    net = Network(config)
    builder = LocalityWorkloadBuilder(net.topology, reuse=10.0,
                                      spatial_decay=0.5)
    workload = builder.build(
        fresh_factory(),
        offered_load=0.25,
        length=32,
        duration=4000,
        rng=SimRandom(33),
    )
    Simulator(net, workload).run(300_000)
    stats = net.stats
    total = len(stats.messages)
    return (
        variant,
        stats.mean_latency(),
        stats.count("probe.launched"),
        stats.count("probe.launched_forced"),
        stats.count("clrp.victim_releases_requested"),
        stats.count("mode.circuit_hit") / total,
    )


def test_e8e_clrp_variants(benchmark):
    variants = ("standard", "eager_force", "single_switch", "immediate_force")
    rows = once(benchmark, lambda: [variant_run(v) for v in variants])
    table = format_table(
        ["variant", "mean latency", "probes", "forced probes",
         "victim releases", "hit rate"],
        rows,
    )
    publish("E8e", "ablation: CLRP protocol variants (section 3.1 "
                   "simplifications, contended locality traffic)", table)
    by_variant = {r[0]: r for r in rows}
    # Aggressive variants force more and disrupt more circuits.
    assert (by_variant["immediate_force"][4]
            >= by_variant["standard"][4])
    assert (by_variant["immediate_force"][3]
            > by_variant["standard"][3])
    # Every variant still performs (they are all correct protocols).
    for row in rows:
        assert row[1] < 100  # sane latency on this workload


# -- E8f: wormhole virtual channels (the paper's "w" parameter) ---------------


def vc_run(w):
    """Saturation throughput of the S0 baseline as w grows (Dally's
    virtual-channel result, which the hybrid router inherits)."""
    from repro.sim.config import NetworkConfig, WormholeConfig
    from repro.traffic.patterns import UniformPattern
    from repro.traffic.workloads import uniform_workload

    config = NetworkConfig(
        dims=(8, 8),
        protocol="wormhole",
        wave=None,
        wormhole=WormholeConfig(vcs=w, buffer_depth=4),
    )
    net = Network(config)
    duration = 3000
    workload = uniform_workload(
        fresh_factory(),
        UniformPattern(64),
        num_nodes=64,
        offered_load=0.9,
        length=32,
        duration=duration,
        rng=SimRandom(61),
    )
    Simulator(net, workload).run(duration)
    throughput = net.stats.throughput_flits_per_cycle(800, duration) / 64
    return (w, throughput, net.stats.mean_network_latency())


def test_e8f_wormhole_virtual_channels(benchmark):
    rows = once(benchmark, lambda: [vc_run(w) for w in (1, 2, 4, 8)])
    table = format_table(
        ["w (wormhole VCs)", "saturation throughput", "mean latency"], rows
    )
    publish("E8f", "ablation: wormhole virtual channels w "
                   "(uniform traffic far past saturation)", table)
    by_w = {r[0]: r for r in rows}
    # Virtual channels raise the wormhole saturation point (Dally [7]).
    assert by_w[2][1] > by_w[1][1]
    assert by_w[4][1] > by_w[1][1]
    # Diminishing returns: 8 VCs gain little over 4.
    assert by_w[8][1] < by_w[4][1] * 1.3


# -- E8g: circuit-cache reuse economics across topology families --------------


def topology_reuse_run(name, dims):
    """Per-node 2-partner streaming on a 16-endpoint network.

    The same workload (identical partner draws, lengths, gaps) runs on
    every topology family; what changes is the *economics* of a cached
    circuit: how many hops of setup it amortises and how much latency a
    hit saves over the family's wormhole path.
    """
    from repro.sim.config import NetworkConfig, WaveConfig, WormholeConfig
    from repro.topology import build_topology

    topo = build_topology(name, dims)
    n = topo.num_endpoints
    config = NetworkConfig(
        topology=name,
        dims=dims,
        protocol="clrp",
        wormhole=WormholeConfig(vcs=2 if name == "torus" else 1),
        wave=WaveConfig(num_switches=2, circuit_cache_size=4),
        seed=0,
    )
    net = Network(config)
    factory = fresh_factory()
    stream = SimRandom(77).stream("partners")
    messages = []
    for src in range(n):
        partners = []
        while len(partners) < 2:
            cand = stream.randrange(n)
            if cand != src and cand not in partners:
                partners.append(cand)
        for i in range(40):
            messages.append(factory.make(src, partners[i % 2], 32, i * 150))
    messages.sort(key=lambda m: (m.created, m.msg_id))
    Simulator(net, messages).run(300_000)
    stats = net.stats
    total = len(stats.messages)
    hits = stats.count("mode.circuit_hit")
    setups = [m.setup_cycles for m in stats.messages.values()
              if m.setup_cycles > 0]
    return (
        f"{name} {'x'.join(map(str, dims))}",
        topo.diameter(),
        hits / total,
        sum(setups) / len(setups),
        stats.mean_latency(),
    )


def test_e8g_topology_families(benchmark):
    cases = [
        ("mesh", (4, 4)),
        ("torus", (4, 4)),
        ("fullmesh", (16,)),
        ("min", (4, 4)),  # 4-ary 2-fly: 16 terminals + 8 switches
    ]
    rows = once(
        benchmark, lambda: [topology_reuse_run(n, d) for n, d in cases]
    )
    table = format_table(
        ["topology", "diameter", "hit rate", "mean setup (cycles)",
         "mean latency"],
        rows,
    )
    publish("E8g", "circuit-cache reuse economics across topology "
                   "families (16 endpoints, 2 streaming partners/node)",
            table)
    by_name = {r[0].split()[0]: r for r in rows}
    # Setup cost tracks path length: the diameter-1 full mesh sets up
    # circuits cheapest, the multistage MIN pays the most hops per probe.
    assert by_name["fullmesh"][3] < by_name["mesh"][3]
    assert by_name["min"][3] > by_name["fullmesh"][3]
    # Reuse economics hinge on physical path diversity.  The full mesh
    # gives every pair a private link (near-perfect reuse); the torus's
    # wrap links keep steals rare; the mesh already loses circuits to
    # Force steals on its shared spine.
    assert by_name["fullmesh"][2] > 0.9
    assert by_name["torus"][2] > by_name["mesh"][2]
    # The MIN is the degenerate case: 16 terminals squeeze through 8
    # switches, so nearly every setup steals a cached circuit's channel
    # and reuse collapses -- caching buys almost nothing on this family.
    assert by_name["min"][2] < by_name["mesh"][2]
    assert by_name["min"][2] < 0.2
    # The full mesh's single-hop paths + cheap setup put its latency at
    # the floor of the sweep.
    assert by_name["fullmesh"][4] <= min(r[4] for r in rows)
