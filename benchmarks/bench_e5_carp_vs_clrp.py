"""E5 -- CARP vs CLRP vs wormhole on compiled locality workloads.

Section 3.2: "We believe that the CARP protocol is able to achieve a
higher performance because a circuit is only established when there is
enough temporal communication locality ... In particular, the CARP
protocol does not establish circuits for individual short messages."

The same locality workload is run three ways: wormhole baseline, CLRP
(circuits on demand), and CARP with directives emitted by the profile
compiler (:mod:`repro.traffic.compiler`).  Shape to reproduce: both
circuit protocols crush the wormhole baseline under locality; CARP at
least matches CLRP while launching *fewer* probes (no circuits chased
for cold pairs) and paying no setup on the critical path of hinted
messages.
"""

from repro.analysis.report import format_table
from repro.network.network import Network
from repro.sim.engine import Simulator
from repro.sim.rng import SimRandom
from repro.traffic.compiler import compile_directives
from repro.traffic.locality import LocalityWorkloadBuilder

from benchmarks.common import (
    carp_config,
    clrp_config,
    fresh_factory,
    once,
    publish,
    wormhole_config,
)

LOAD = 0.15
LENGTH = 32
DURATION = 4000


def build_messages(topology):
    builder = LocalityWorkloadBuilder(topology, reuse=16.0, spatial_decay=0.4)
    return builder.build(
        fresh_factory(),
        offered_load=LOAD,
        length=LENGTH,
        duration=DURATION,
        rng=SimRandom(12),
    )


def run_one(name):
    if name == "wormhole":
        config = wormhole_config()
    elif name == "clrp":
        config = clrp_config()
    else:
        config = carp_config()
    net = Network(config)
    msgs = build_messages(net.topology)
    if name == "carp":
        items, _report = compile_directives(
            msgs, min_messages=3, min_flits=48, open_lead=60, close_lag=40
        )
    else:
        items = msgs
    Simulator(net, items).run(120_000)
    stats = net.stats
    hist = stats.latency_histogram()
    delivered = stats.delivered_records()
    mean_setup = (
        sum(m.setup_cycles for m in delivered) / len(delivered)
        if delivered else 0.0
    )
    return (
        name,
        stats.mean_latency(),
        hist.percentile(95),
        stats.count("probe.launched"),
        mean_setup,
        len(delivered),
    )


def run_experiment():
    return [run_one(name) for name in ("wormhole", "clrp", "carp")]


def test_e5_carp_vs_clrp(benchmark):
    rows = once(benchmark, run_experiment)
    table = format_table(
        ["protocol", "mean latency", "p95 latency", "probes launched",
         "mean setup on critical path", "delivered"],
        rows,
    )
    publish("E5", "CARP vs CLRP vs wormhole "
                  "(8x8 mesh, locality workload, compiled directives)", table)

    by_name = {r[0]: r for r in rows}
    wh, clrp, carp = by_name["wormhole"], by_name["clrp"], by_name["carp"]
    # Everything delivered everywhere.
    assert wh[5] == clrp[5] == carp[5]
    # Both circuit protocols beat the wormhole baseline decisively.
    assert clrp[1] < wh[1] * 0.6
    assert carp[1] < wh[1] * 0.6
    # CARP at least matches CLRP (the paper's conjecture), within noise.
    assert carp[1] <= clrp[1] * 1.10
    # CARP charges no setup to message critical paths (prefetched opens).
    assert carp[4] == 0.0
    assert clrp[4] > 0.0


# -- E5b: end-point buffer allocation (section 2's software-overhead claim) --


def buffered_run(protocol):
    """Mixed-length trains per pair: CLRP guesses buffer sizes, CARP knows."""
    from repro.sim.config import NetworkConfig, WaveConfig
    from repro.traffic.workloads import merge_streams, pair_stream_workload

    config = NetworkConfig(
        dims=(8, 8),
        protocol=protocol,
        wave=WaveConfig(model_buffers=True, default_buffer_flits=64,
                        buffer_realloc_penalty=200),
    )
    net = Network(config)
    factory = fresh_factory()
    streams = []
    stream_rng = SimRandom(41).stream("pairs")
    for src in range(0, 64, 2):
        dst = (src + 9) % 64
        # Short warm-up messages followed by occasional long ones: the
        # worst case for guess-sized buffers.
        streams.append(pair_stream_workload(
            factory, [(src, dst)], messages_per_pair=6,
            length=32, gap=300,
        ))
        streams.append(pair_stream_workload(
            factory, [(src, dst)], messages_per_pair=2,
            length=32 * (4 + stream_rng.randrange(12)), gap=900, start=150,
        ))
    msgs = merge_streams(*streams)
    if protocol == "carp":
        items, _ = compile_directives(msgs, min_messages=3, min_flits=48,
                                      max_gap=3000)
    else:
        items = msgs
    Simulator(net, items).run(400_000)
    stats = net.stats
    return (
        protocol,
        stats.mean_latency(),
        stats.count("circuit.buffer_reallocs"),
        len(stats.delivered_records()),
    )


def test_e5b_buffer_allocation(benchmark):
    rows = once(benchmark, lambda: [buffered_run(p) for p in ("clrp", "carp")])
    table = format_table(
        ["protocol", "mean latency", "buffer re-allocations", "delivered"],
        rows,
    )
    publish("E5b", "end-point buffer sizing: CLRP's guessed buffers vs "
                   "CARP's compiler-sized buffers (mixed-length trains)",
            table)
    by_name = {r[0]: r for r in rows}
    # CARP sizes buffers from the episode's longest message: no reallocs.
    assert by_name["carp"][2] == 0
    # CLRP's guessed default must re-allocate for the long messages...
    assert by_name["clrp"][2] > 0
    # ...which costs latency.
    assert by_name["carp"][1] < by_name["clrp"][1]
    assert by_name["clrp"][3] == by_name["carp"][3]
