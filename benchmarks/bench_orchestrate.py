"""Orchestrator wall-clock benchmark: serial vs parallel vs warm cache.

Standalone script (not a pytest benchmark): runs the same multi-point
CLRP load sweep three ways through :func:`repro.orchestrate.run_jobs` --

* ``jobs=1`` (serial degenerate case, the pre-orchestrator baseline),
* ``jobs=4`` (worker pool; speedup tracks the host's usable cores, so
  ~1x on a single-core container and >=2x on any >=2-core machine
  since every sweep point is an independent simulation),
* ``jobs=4`` again over a warm result store (content-hash cache: no
  simulation at all, the orchestrator's worst-case-free speedup),

asserts the parallel metrics are bit-identical to the serial ones, and
writes wall-clock numbers and speedups to ``BENCH_orchestrate.json`` at
the repository root.

Run with::

    PYTHONPATH=src:. python benchmarks/bench_orchestrate.py
"""

from __future__ import annotations

import json
import os
import tempfile
import time
from pathlib import Path

from repro.orchestrate import JobSpec, ResultStore, WorkloadRecipe, run_jobs

from benchmarks.common import clrp_config

LOADS = [0.05, 0.1, 0.15, 0.2, 0.25, 0.3, 0.35, 0.4]
LENGTH = 128
DURATION = 2500
MAX_CYCLES = 60_000
JOBS = 4

OUT_PATH = Path(__file__).resolve().parent.parent / "BENCH_orchestrate.json"


def sweep_specs() -> list[JobSpec]:
    return [
        JobSpec(
            config=clrp_config(),
            workload=WorkloadRecipe.make(
                "uniform", load=load, length=LENGTH, duration=DURATION
            ),
            label=f"clrp@{load:g}",
            max_cycles=MAX_CYCLES,
            warmup=DURATION // 5,
        )
        for load in LOADS
    ]


def run_once(jobs: int, store: ResultStore | None = None) -> tuple[float, list]:
    start = time.perf_counter()
    outcomes = run_jobs(sweep_specs(), jobs=jobs, store=store)
    elapsed = time.perf_counter() - start
    assert all(o.ok for o in outcomes), "benchmark sweep must not fail"
    return elapsed, outcomes


def main() -> None:
    cpus = os.cpu_count() or 1
    print(f"{len(LOADS)}-point CLRP sweep on 8x8 mesh, host cpus={cpus}")

    serial_s, serial = run_once(jobs=1)
    print(f"  serial   (jobs=1): {serial_s:6.2f}s")
    parallel_s, parallel = run_once(jobs=JOBS)
    print(f"  parallel (jobs={JOBS}): {parallel_s:6.2f}s")

    # Identical simulation outcomes or the comparison is meaningless.
    for a, b in zip(serial, parallel):
        assert a.metrics == b.metrics, (
            f"{a.spec.label}: parallel metrics diverged from serial"
        )

    with tempfile.TemporaryDirectory() as tmp:
        store = ResultStore(Path(tmp) / "results.jsonl")
        run_once(jobs=JOBS, store=store)  # populate
        cached_s, cached = run_once(jobs=JOBS, store=store)
        assert all(o.from_cache for o in cached)
        for a, b in zip(serial, cached):
            assert a.metrics == b.metrics, (
                f"{a.spec.label}: cached metrics diverged from serial"
            )
    print(f"  warm cache       : {cached_s:6.2f}s")

    parallel_speedup = serial_s / parallel_s
    cache_speedup = serial_s / cached_s
    print(f"  parallel speedup {parallel_speedup:.2f}x  "
          f"cache speedup {cache_speedup:.1f}x")

    results = {
        "benchmark": (
            f"orchestrator, {len(LOADS)}-point CLRP load sweep on 8x8 mesh, "
            f"{LENGTH}-flit messages, {DURATION}-cycle injection"
        ),
        "host_cpus": cpus,
        "jobs": JOBS,
        "points": len(LOADS),
        "serial_wall_seconds": round(serial_s, 3),
        "parallel_wall_seconds": round(parallel_s, 3),
        "warm_cache_wall_seconds": round(cached_s, 3),
        "parallel_speedup": round(parallel_speedup, 2),
        "warm_cache_speedup": round(cache_speedup, 1),
        "bit_identical_serial_vs_parallel": True,
        "note": (
            "parallel speedup is bounded by usable cores: expect >= 2x at "
            "jobs=4 on any machine with >= 2 cores (points are independent "
            "simulations); on a single-core container it is ~1x and the "
            "cache speedup is the orchestrator's win"
        ),
    }
    OUT_PATH.write_text(json.dumps(results, indent=2) + "\n")
    print(f"wrote {OUT_PATH}")


if __name__ == "__main__":
    main()
