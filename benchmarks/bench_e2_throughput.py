"""E2 -- Accepted throughput vs offered load: wave vs wormhole.

Paper claim (section 1/5, citing [10]): "wave switching is able to ...
increase throughput by a factor higher than three if messages are long
enough (>= 128 flits), even if circuits are not reused."

Uniform random traffic of 128-flit messages on the 8x8 mesh.  Wormhole
switching saturates when blocked worms start holding channels; CLRP's
circuits stream contention-free at the wave clock, so accepted
throughput keeps tracking offered load far beyond the wormhole knee.
The shape to reproduce: identical curves at low load, a wormhole
saturation plateau, and a wave saturation point more than 3x higher.
"""

from repro.analysis.report import format_table
from repro.network.network import Network
from repro.sim.engine import Simulator
from repro.sim.rng import SimRandom
from repro.traffic.patterns import UniformPattern
from repro.traffic.workloads import uniform_workload

from benchmarks.common import NODES, clrp_config, fresh_factory, once, publish, wormhole_config

LOADS = [0.1, 0.3, 0.6, 0.95]
LENGTH = 128  # the paper's "long enough" threshold
DURATION = 4000
WARMUP = 1000


def accepted_throughput(config, load: float) -> float:
    net = Network(config)
    workload = uniform_workload(
        fresh_factory(),
        UniformPattern(NODES),
        num_nodes=NODES,
        offered_load=load,
        length=LENGTH,
        duration=DURATION,
        rng=SimRandom(5),
    )
    Simulator(net, workload).run(DURATION)  # measure during injection
    return net.stats.throughput_flits_per_cycle(WARMUP, DURATION) / NODES


def run_experiment():
    rows = []
    for load in LOADS:
        wh = accepted_throughput(wormhole_config(), load)
        wave = accepted_throughput(clrp_config(), load)
        rows.append((load, wh, wave, wave / wh))
    return rows


def test_e2_throughput_vs_load(benchmark):
    rows = once(benchmark, run_experiment)
    table = format_table(
        ["offered (flits/node/cy)", "wormhole accepted", "wave accepted", "ratio"],
        rows,
    )
    publish("E2", "accepted throughput vs offered load "
                  "(8x8 mesh, uniform, 128-flit messages, cold circuits)",
            table)

    by_load = {r[0]: r for r in rows}
    # Low load: both deliver what is offered (within 15%).
    assert abs(by_load[0.1][1] - 0.1) < 0.015
    assert abs(by_load[0.1][2] - 0.1) < 0.015
    # Wormhole saturates: more offered load does not mean more delivered.
    assert by_load[0.95][1] < by_load[0.6][1] * 1.2
    # Wave keeps accepting: >= 3x wormhole's saturation throughput.
    assert by_load[0.95][3] >= 3.0
