"""E6 -- Theorems 1-4 as a measured experiment.

Section 4 proves CLRP and CARP deadlock- and livelock-free, i.e. "every
message will reach its destination in finite time".  This benchmark makes
that an observable: randomized stress runs across seeds and protocols,
far past the wormhole saturation point, with

* the wait-for-graph deadlock detector armed every 100 cycles,
* the MB-m probe-work monitor armed every 20 cycles,
* full delivery asserted at the end, and the maximum message latency
  reported (the "finite time" in the theorems, measured).

The paper's artefact here is a guarantee rather than a curve; the table
records that the guarantee held, and at what worst-case latency, for
every (protocol, seed) cell.
"""

from repro.analysis.report import format_table
from repro.network.message import MessageFactory
from repro.network.network import Network
from repro.sim.config import NetworkConfig, WaveConfig
from repro.sim.engine import Simulator
from repro.sim.rng import SimRandom
from repro.traffic.compiler import compile_directives
from repro.traffic.patterns import UniformPattern
from repro.traffic.workloads import uniform_workload
from repro.verify import ProbeWorkMonitor, check_all_invariants

from benchmarks.common import once, publish

SEEDS = [101, 202, 303]
DIMS = (6, 6)
NODES = 36
LOAD = 0.7  # far beyond wormhole saturation
LENGTH = 32
DURATION = 2500


def run_one(protocol, seed):
    config = NetworkConfig(
        dims=DIMS,
        protocol=protocol,
        wave=None if protocol == "wormhole" else WaveConfig(
            num_switches=1, circuit_cache_size=3, misroute_budget=1
        ),
        seed=seed,
    )
    net = Network(config)
    msgs = uniform_workload(
        MessageFactory(),
        UniformPattern(NODES),
        num_nodes=NODES,
        offered_load=LOAD,
        length=LENGTH,
        duration=DURATION,
        rng=SimRandom(seed),
    )
    if protocol == "carp":
        items, _ = compile_directives(msgs, min_messages=3, min_flits=48)
    else:
        items = msgs
    monitor = ProbeWorkMonitor(net) if net.plane is not None else None

    def on_cycle(n):
        if monitor is not None and n.cycle % 20 == 0:
            monitor.check()

    sim = Simulator(
        net,
        items,
        deadlock_check_interval=100,
        progress_timeout=60_000,
        on_cycle=on_cycle,
    )
    result = sim.run(800_000)
    check_all_invariants(net)
    delivered = net.stats.delivered_records()
    max_latency = max((m.latency for m in delivered), default=0)
    return (
        protocol,
        seed,
        result.injected,
        result.delivered,
        max_latency,
        net.stats.count("probe.backtracks"),
        net.stats.count("clrp.victim_releases_requested"),
    )


def run_experiment():
    rows = []
    for protocol in ("wormhole", "clrp", "carp"):
        for seed in SEEDS:
            rows.append(run_one(protocol, seed))
    return rows


def test_e6_liveness_guarantees(benchmark):
    rows = once(benchmark, run_experiment)
    table = format_table(
        ["protocol", "seed", "injected", "delivered", "max latency",
         "probe backtracks", "victim releases"],
        rows,
    )
    publish("E6", "deadlock/livelock freedom under saturation stress "
                  "(6x6 mesh, load 0.7 flits/node/cycle)", table)

    for row in rows:
        protocol, seed, injected, delivered, max_latency = row[:5]
        assert delivered == injected, f"{protocol}/{seed} lost messages"
        assert max_latency > 0
    # The machinery the proofs reason about was actually exercised.
    assert any(r[5] > 0 for r in rows if r[0] == "clrp"), "no backtracking seen"
    assert any(r[6] > 0 for r in rows if r[0] == "clrp"), "no Force releases seen"
